"""Version-negotiation suite: the ``/v1`` wire API vs the legacy shims.

The contract under test (``docs/api.md``):

* every ``/v1`` response is enveloped ``{"result"|"error", "meta"}`` and
  ``meta`` always carries ``api_version`` and ``trace_id``,
* the ``result`` payload is byte-identical to what the same request gets
  at the bare legacy path (the shims flatten, they never re-solve),
* legacy responses carry ``Deprecation: true`` plus a successor-version
  ``Link``; ``/v1`` responses carry neither,
* errors are ``{"error": {"code", "message", "detail"?}}`` under ``/v1``
  and flattened back to the historical string ``error`` field (with
  detail keys hoisted top-level) under the legacy paths,
* ``GET /v1/solvers`` is the discovery endpoint the unknown-solver 400
  points at.
"""

import asyncio
import json

import pytest

from repro.service import SchedulingService, ServiceConfig
from repro.service.loadgen import HttpClient, request_once

_TASKS = [[0.0, 10.0, 8.0], [2.0, 18.0, 14.0], [4.0, 16.0, 8.0]]
# cache_size=0 so the v1/legacy replays of one request cannot diverge on
# the cache_hit flag — equality below is over the full payload
_BASE = dict(port=0, workers=0, log_interval=0, cache_size=0)


def _config(**kwargs) -> ServiceConfig:
    return ServiceConfig(**{**_BASE, **kwargs})


def _run(test_coro, config: ServiceConfig | None = None):
    async def runner():
        service = SchedulingService(config or _config())
        await service.start()
        try:
            return await test_coro(service)
        finally:
            await service.stop()

    return asyncio.run(runner())


def _schedule_payload(**over):
    return {"tasks": _TASKS, "m": 2, "alpha": 3.0, "static": 0.1,
            "method": "der", **over}


async def _both(service, method, path, payload=None):
    """Hit the legacy path and its /v1 twin; return both full responses."""
    client = HttpClient("127.0.0.1", service.port)
    await client.connect()
    try:
        legacy = await client.request_full(method, path, payload)
        v1 = await client.request_full(method, "/v1" + path, payload)
    finally:
        await client.close()
    return legacy, v1


class TestEnvelope:
    def test_v1_result_is_byte_identical_to_legacy(self):
        async def scenario(service):
            (ls, _, lbody), (vs, _, vbody) = await _both(
                service, "POST", "/schedule", _schedule_payload()
            )
            assert ls == vs == 200
            assert vbody["result"] == lbody
            # canonical JSON of both payloads matches byte-for-byte
            assert (json.dumps(vbody["result"], sort_keys=True)
                    == json.dumps(lbody, sort_keys=True))

        _run(scenario)

    def test_v1_optimal_wraps_the_legacy_payload_shape(self):
        # /optimal carries warm-start state across solves (iterate-level
        # floats drift run to run), so the contract here is structural:
        # same fields, same solver, energies within solver tolerance
        async def scenario(service):
            payload = {"tasks": _TASKS, "m": 2, "alpha": 3.0, "static": 0.1}
            (ls, _, lbody), (vs, _, vbody) = await _both(
                service, "POST", "/optimal", payload
            )
            assert ls == vs == 200
            result = vbody["result"]
            assert set(result) == set(lbody)
            assert result["solver"] == lbody["solver"] == "interior-point"
            assert result["energy"] == pytest.approx(lbody["energy"], rel=1e-8)

        _run(scenario)

    def test_v1_admit_matches_legacy_after_reset(self):
        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                task = {"task": [0.0, 10.0, 6.0]}
                await client.request("POST", "/admit", {"reset": True})
                _, legacy = await client.request("POST", "/admit", task)
                await client.request("POST", "/admit", {"reset": True})
                _, v1 = await client.request("POST", "/v1/admit", task)
                assert v1["result"] == legacy
            finally:
                await client.close()

        _run(scenario)

    def test_every_v1_response_carries_meta(self):
        async def scenario(service):
            requests = [
                ("POST", "/v1/schedule", _schedule_payload()),
                ("POST", "/v1/admit", {"task": [0.0, 10.0, 2.0]}),
                ("POST", "/v1/optimal",
                 {"tasks": _TASKS, "m": 2, "alpha": 3.0, "static": 0.1}),
                ("GET", "/v1/metrics", None),
                ("GET", "/v1/healthz", None),
                ("GET", "/v1/solvers", None),
                ("POST", "/v1/schedule", {"tasks": []}),  # error path
            ]
            for method, path, payload in requests:
                status, body = await request_once(
                    "127.0.0.1", service.port, method, path, payload
                )
                assert ("result" in body) != ("error" in body), path
                meta = body["meta"]
                assert meta["api_version"] == "v1"
                assert meta["trace_id"]
                assert "shard" in meta  # null single-process, int behind router
                if path == "/v1/schedule" and status == 200:
                    # meta names the canonical solver that actually ran
                    assert meta["solver"] == "subinterval-der"

        _run(scenario)


class TestDeprecationHeaders:
    def test_legacy_paths_announce_deprecation(self):
        async def scenario(service):
            for method, path, payload in (
                ("POST", "/schedule", _schedule_payload()),
                ("GET", "/metrics", None),
                ("GET", "/healthz", None),
            ):
                (_, lheaders, _), (_, vheaders, _) = await _both(
                    service, method, path, payload
                )
                assert lheaders.get("deprecation") == "true"
                assert f"</v1{path}>" in lheaders.get("link", "")
                assert 'rel="successor-version"' in lheaders["link"]
                assert "deprecation" not in vheaders

        _run(scenario)

    def test_legacy_traffic_is_counted(self):
        async def scenario(service):
            await request_once(
                "127.0.0.1", service.port, "GET", "/healthz"
            )
            await request_once(
                "127.0.0.1", service.port, "GET", "/v1/healthz"
            )
            _, m = await request_once(
                "127.0.0.1", service.port, "GET", "/v1/metrics"
            )
            counters = m["result"]["metrics"]["counters"]
            assert counters["legacy_requests_total"] == 1

        _run(scenario)


class TestUnifiedErrors:
    def test_v1_error_schema(self):
        async def scenario(service):
            cases = [
                ("POST", "/v1/schedule", {"m": 2}, 400, "bad_request"),
                ("POST", "/v1/schedule",
                 {"tasks": _TASKS, "method": "magic"}, 400, "unknown_solver"),
                ("GET", "/v1/nope", None, 404, "not_found"),
                ("GET", "/v1/schedule", None, 405, "method_not_allowed"),
            ]
            for method, path, payload, want_status, want_code in cases:
                status, body = await request_once(
                    "127.0.0.1", service.port, method, path, payload
                )
                assert status == want_status, path
                err = body["error"]
                assert err["code"] == want_code
                assert isinstance(err["message"], str) and err["message"]
                assert body["meta"]["api_version"] == "v1"

        _run(scenario)

    def test_legacy_errors_stay_flat_strings(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", {"m": 2}
            )
            assert status == 400
            assert isinstance(body["error"], str)
            assert "meta" not in body

        _run(scenario)

    def test_unknown_solver_400_points_at_discovery(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/v1/schedule",
                {"tasks": _TASKS, "method": "magic"},
            )
            assert status == 400
            err = body["error"]
            assert err["code"] == "unknown_solver"
            assert "GET /v1/solvers" in err["message"]
            detail = err["detail"]
            assert detail["requested"] == "magic"
            assert detail["discovery"] == "GET /v1/solvers"
            assert "subinterval-der" in detail["solvers"]

        _run(scenario)

    def test_invalid_json_yields_unified_400(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            raw = b"{not json"
            writer.write(
                b"POST /v1/schedule HTTP/1.1\r\nContent-Length: "
                + str(len(raw)).encode()
                + b"\r\nConnection: close\r\n\r\n" + raw
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n", 1)[0]
            body = json.loads(await reader.read())
            assert body["error"]["code"] == "invalid_json"
            writer.close()

        _run(scenario)

    def test_overload_shed_is_unified(self):
        async def scenario(service):
            release = asyncio.Event()

            async def slow_dispatch(jobs):
                await release.wait()
                return [{"kind": "S^F2", "energy": 1.0, "n_tasks": 1,
                         "m": 2, "method": "der"} for _ in jobs]

            service.batcher._dispatch = slow_dispatch

            async def fire(i, v1):
                prefix = "/v1" if v1 else ""
                return await request_once(
                    "127.0.0.1", service.port, "POST", f"{prefix}/schedule",
                    _schedule_payload(tasks=[[0.0, 10.0, 1.0 + i]]),
                )

            clients = [asyncio.ensure_future(fire(i, i % 2 == 0))
                       for i in range(4)]
            await asyncio.sleep(0.15)
            release.set()
            results = await asyncio.gather(*clients)
            shed = [(i, body) for i, (status, body) in enumerate(results)
                    if status == 429]
            assert len(shed) == 3
            for i, body in shed:
                if i % 2 == 0:  # the /v1 half
                    assert body["error"]["code"] == "overloaded"
                    assert body["error"]["detail"]["max_inflight"] == 1
                else:  # legacy flatten: string error + hoisted detail keys
                    assert isinstance(body["error"], str)
                    assert body["max_inflight"] == 1

        _run(scenario, _config(max_inflight=1, batch_window=0.001,
                               batch_max=1))


class TestSolverDiscovery:
    def test_catalog_shape(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "GET", "/v1/solvers"
            )
            assert status == 200
            solvers = {s["name"]: s for s in body["result"]["solvers"]}
            assert {"subinterval-der", "optimal:interior-point"} <= set(solvers)
            assert "der" in solvers["subinterval-der"]["aliases"]
            assert solvers["optimal:interior-point"]["optimal_only"] is True
            assert solvers["subinterval-der"]["optimal_only"] is False
            for entry in solvers.values():
                assert set(entry) >= {"name", "aliases", "optimal_only",
                                      "session"}

        _run(scenario)

    def test_degrade_targets_reflect_config(self):
        async def scenario(service):
            _, body = await request_once(
                "127.0.0.1", service.port, "GET", "/v1/solvers"
            )
            solvers = {s["name"]: s for s in body["result"]["solvers"]}
            assert (solvers["optimal:interior-point"].get("degrades_to")
                    == "subinterval-der")

        _run(scenario, _config(solver_timeout=5.0,
                               degrade_to="subinterval-der"))

    def test_no_degrade_without_timeout(self):
        async def scenario(service):
            _, body = await request_once(
                "127.0.0.1", service.port, "GET", "/v1/solvers"
            )
            for entry in body["result"]["solvers"]:
                assert entry["degrades_to"] is None

        _run(scenario, _config(solver_timeout=0.0))


class TestLegacyCompatibility:
    """The pre-v1 surface is pinned: same fields, same types."""

    def test_schedule_response_fields_unchanged(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                _schedule_payload(),
            )
            assert status == 200
            assert body["kind"] == "S^F2"
            assert body["energy"] > 0
            assert "schedule" in body
            assert "result" not in body and "meta" not in body

        _run(scenario)

    def test_shared_state_across_dialects(self):
        """/admit and /v1/admit are one session, not two."""

        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                await client.request("POST", "/admit", {"reset": True})
                _, first = await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 4.0]}
                )
                assert first["committed"] == 1
                _, second = await client.request(
                    "POST", "/v1/admit", {"task": [1.0, 12.0, 4.0]}
                )
                assert second["result"]["committed"] == 2
            finally:
                await client.close()

        _run(scenario)


class TestAdmitPeek:
    def test_peek_is_read_only_snapshot(self):
        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                await client.request("POST", "/admit", {"reset": True})
                _, empty = await client.request(
                    "POST", "/v1/admit", {"peek": True}
                )
                assert empty["result"]["committed"] == 0
                assert empty["result"]["peek"] is True
                await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 4.0]}
                )
                _, a = await client.request(
                    "POST", "/v1/admit", {"peek": True}
                )
                _, b = await client.request(
                    "POST", "/v1/admit", {"peek": True}
                )
                assert a["result"] == b["result"]  # no state mutation
                assert a["result"]["committed"] == 1
                assert a["result"]["energy"] > 0
                assert a["result"]["boundaries"]
                assert a["result"]["x"]
            finally:
                await client.close()

        _run(scenario)

    def test_peek_rejects_task(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/v1/admit",
                {"peek": True, "task": [0.0, 10.0, 4.0]},
            )
            assert status == 400
            assert body["error"]["code"] == "bad_request"

        _run(scenario)


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
