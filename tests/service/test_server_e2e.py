"""End-to-end tests: real daemon on an ephemeral port, real HTTP clients.

Everything runs in-process (``workers=0`` solves in a thread executor)
except one test that exercises the actual ``ProcessPoolExecutor`` path.
Each test owns its event loop via ``asyncio.run``; the service binds
port 0 so tests parallelize safely.
"""

import asyncio
import json

import pytest

from repro.io import schedule_from_json
from repro.service import SchedulingService, ServiceConfig
from repro.service.loadgen import HttpClient, request_once, run_loadgen
from repro.sim import validate_schedule

_TASKS = [[0.0, 10.0, 8.0], [2.0, 18.0, 14.0], [4.0, 16.0, 8.0]]
_BASE = dict(port=0, workers=0, log_interval=0)


def _config(**kwargs) -> ServiceConfig:
    return ServiceConfig(**{**_BASE, **kwargs})


def _run(test_coro, config: ServiceConfig | None = None, *, stop: bool = True):
    """Boot a service, run ``test_coro(service)``, gracefully stop."""

    async def runner():
        service = SchedulingService(config or _config())
        await service.start()
        try:
            return await test_coro(service)
        finally:
            if stop:
                await service.stop()

    return asyncio.run(runner())


def _schedule_payload(tasks=_TASKS, **over):
    return {"tasks": tasks, "m": 2, "alpha": 3.0, "static": 0.1,
            "method": "der", **over}


class TestScheduleEndpoint:
    def test_concurrent_clients_all_validate(self):
        """The acceptance e2e: concurrent clients, responses pass sim/validate."""

        async def scenario(service):
            async def one_client(seed):
                # distinct work per client so responses genuinely differ
                tasks = [[0.0, 10.0, 4.0 + seed], [1.0, 12.0, 3.0 + seed]]
                status, body = await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(tasks=tasks),
                )
                return status, body

            results = await asyncio.gather(*(one_client(s) for s in range(8)))
            for status, body in results:
                assert status == 200
                assert body["energy"] > 0
                assert body["kind"] == "S^F2"
                schedule = schedule_from_json(json.dumps(body["schedule"]))
                assert validate_schedule(schedule) == []

        _run(scenario, _config(batch_window=0.01, batch_max=8))

    def test_permuted_task_order_is_a_cache_hit_without_pool_entry(self):
        """Warm hits (incl. permutations) never touch the solve executor."""

        async def scenario(service):
            cold_status, cold = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", _schedule_payload()
            )
            assert cold_status == 200 and cold["cache_hit"] is False
            dispatches_after_cold = service.dispatcher.dispatch_count
            assert dispatches_after_cold > 0

            permuted = [_TASKS[2], _TASKS[0], _TASKS[1]]
            for tasks in (_TASKS, permuted):
                status, warm = await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(tasks=tasks),
                )
                assert status == 200
                assert warm["cache_hit"] is True
                assert warm["energy"] == cold["energy"]
            # the pool-call count is unchanged by warm traffic
            assert service.dispatcher.dispatch_count == dispatches_after_cold
            assert service.cache.hits == 2

        _run(scenario)

    def test_online_method_reports_replans(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                _schedule_payload(method="online"),
            )
            assert status == 200
            assert body["kind"] == "online"
            assert body["replans"] >= 0

        _run(scenario)

    def test_include_schedule_false_is_lighter(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                _schedule_payload(include_schedule=False),
            )
            assert status == 200
            assert "schedule" not in body
            # a later full request must NOT be served from the light entry
            status, full = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", _schedule_payload()
            )
            assert status == 200 and "schedule" in full

        _run(scenario)

    def test_malformed_requests_get_400(self):
        async def scenario(service):
            for payload in (
                {"m": 2},  # no tasks
                {"tasks": []},
                {"tasks": _TASKS, "method": "magic"},
                {"tasks": [[5.0, 1.0, 2.0]]},  # deadline < release
            ):
                status, body = await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule", payload
                )
                assert status == 400
                assert "error" in body

        _run(scenario)

    def test_process_pool_workers(self):
        """The real ProcessPoolExecutor path: pickled jobs, chunked batches."""

        async def scenario(service):
            results = await asyncio.gather(*(
                request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(tasks=[[0.0, 10.0, 2.0 + i]]),
                )
                for i in range(4)
            ))
            assert [status for status, _ in results] == [200] * 4
            assert service.dispatcher.dispatch_count >= 1

        _run(scenario, _config(workers=1, batch_window=0.02, batch_max=8,
                               request_timeout=120.0))


class TestRobustness:
    def test_shedding_beyond_max_inflight(self):
        async def scenario(service):
            release = asyncio.Event()

            async def slow_dispatch(jobs):
                await release.wait()
                return [{"kind": "S^F2", "energy": 1.0, "n_tasks": 1, "m": 2,
                         "method": "der"} for _ in jobs]

            service.batcher._dispatch = slow_dispatch

            async def fire(i):
                return await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(tasks=[[0.0, 10.0, 1.0 + i]]),
                )

            clients = [asyncio.ensure_future(fire(i)) for i in range(6)]
            await asyncio.sleep(0.15)  # let 2 occupy the slots, rest arrive
            release.set()
            results = await asyncio.gather(*clients)
            statuses = sorted(status for status, _ in results)
            assert statuses.count(429) == 4
            assert statuses.count(200) == 2
            status, metrics = await request_once(
                "127.0.0.1", service.port, "GET", "/metrics"
            )
            assert metrics["metrics"]["counters"]["shed_total"] == 4

        _run(scenario, _config(max_inflight=2, batch_window=0.001, batch_max=1))

    def test_request_deadline_yields_504(self):
        async def scenario(service):
            async def stuck_dispatch(jobs):
                await asyncio.sleep(60)

            service.batcher._dispatch = stuck_dispatch
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", _schedule_payload()
            )
            assert status == 504
            assert "deadline" in body["error"]

        _run(scenario, _config(request_timeout=0.2, batch_window=0.001, batch_max=1))

    def test_graceful_shutdown_loses_zero_accepted_requests(self):
        """stop() during in-flight traffic: every accepted request answers 200."""

        async def scenario(service):
            inner = service.batcher._dispatch

            async def slow_dispatch(jobs):
                await asyncio.sleep(0.2)  # keep requests in flight during stop()
                return await inner(jobs)

            service.batcher._dispatch = slow_dispatch

            async def fire(i):
                return await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(tasks=[[0.0, 10.0, 1.0 + i]]),
                )

            clients = [asyncio.ensure_future(fire(i)) for i in range(6)]
            await asyncio.sleep(0.1)  # all 6 accepted, none answered yet
            assert service._in_progress > 0
            await service.stop()  # drains before tearing down
            results = await asyncio.gather(*clients)
            assert [status for status, _ in results] == [200] * 6
            for _, body in results:
                assert body["energy"] > 0

        _run(scenario, _config(batch_window=0.03, batch_max=3), stop=False)

    def test_rejects_new_requests_while_closing(self):
        async def scenario(service):
            await service.stop()
            # the listener is closed: new connections must fail
            with pytest.raises((ConnectionError, OSError)):
                await request_once(
                    "127.0.0.1", service.port, "GET", "/healthz"
                )

        # service.port raises after stop(); capture it before
        async def runner():
            service = SchedulingService(_config())
            await service.start()
            port = service.port
            await service.stop()
            with pytest.raises((ConnectionError, OSError)):
                await request_once("127.0.0.1", port, "GET", "/healthz")

        asyncio.run(runner())


class TestRoutingAndMetrics:
    def test_unknown_route_404_wrong_method_405(self):
        async def scenario(service):
            status, _ = await request_once(
                "127.0.0.1", service.port, "GET", "/nope"
            )
            assert status == 404
            status, _ = await request_once(
                "127.0.0.1", service.port, "GET", "/schedule"
            )
            assert status == 405

        _run(scenario)

    def test_invalid_json_body_400(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            body = b"{not json"
            writer.write(
                b"POST /schedule HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\nConnection: close\r\n\r\n" + body
            )
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()

        _run(scenario)

    def test_metrics_exposes_required_series(self):
        """Acceptance: request counts, shed, cache hit rate, percentiles."""

        async def scenario(service):
            for _ in range(3):  # 1 miss + 2 hits
                await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    _schedule_payload(),
                )
            status, m = await request_once(
                "127.0.0.1", service.port, "GET", "/metrics"
            )
            assert status == 200
            counters = m["metrics"]["counters"]
            assert counters["requests_total:/schedule"] == 3
            assert counters["responses:/schedule:200"] == 3
            assert counters.get("shed_total", 0) == 0
            assert counters["cache_hits"] == 2
            assert counters["cache_misses"] == 1
            assert m["cache"]["hit_rate"] == pytest.approx(2 / 3)
            lat = m["metrics"]["histograms"]["latency_ms:/schedule"]
            assert lat["count"] == 3
            for q in ("p50", "p95", "p99"):
                assert lat[q] is not None and lat[q] >= 0
            assert m["batcher"]["jobs"] == 1  # hits never reached the batcher
            assert m["uptime_s"] >= 0

        _run(scenario)

    def test_healthz(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "GET", "/healthz"
            )
            assert status == 200
            assert body["status"] == "ok"
            assert "version" in body

        _run(scenario)


class TestAdmitAndOptimal:
    def test_admission_is_stateful_until_reset(self):
        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                # 2 cores at f_max=1: three full-window unit-intensity tasks
                # cannot all fit, so the third admission must be refused
                accepted = []
                for _ in range(3):
                    status, body = await client.request(
                        "POST", "/admit", {"task": [0.0, 10.0, 10.0]}
                    )
                    assert status == 200
                    accepted.append(body["accepted"])
                assert accepted == [True, True, False]
                status, body = await client.request("POST", "/admit", {"reset": True})
                assert status == 200 and body["committed"] == 0
                status, body = await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 10.0]}
                )
                assert body["accepted"] is True
                assert body["marginal_energy"] > 0
            finally:
                await client.close()

        _run(scenario, _config(m=2, f_max=1.0))

    def test_optimal_not_above_heuristic(self):
        async def scenario(service):
            _, sched = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", _schedule_payload()
            )
            status, opt = await request_once(
                "127.0.0.1", service.port, "POST", "/optimal",
                {"tasks": _TASKS, "m": 2, "alpha": 3.0, "static": 0.1},
            )
            assert status == 200
            assert opt["solver"] == "interior-point"
            assert opt["energy"] <= sched["energy"] * (1 + 1e-6)
            assert len(opt["frequencies"]) == len(_TASKS)

        _run(scenario)


class TestLoadgen:
    def test_loadgen_round_trip_and_cache_warming(self):
        async def scenario(service):
            stats = await run_loadgen(
                "127.0.0.1", service.port,
                n_requests=40, concurrency=4, n_tasks=4, unique=5,
                include_schedule=False, seed=3,
            )
            assert stats["ok"] == 40
            assert stats["errors"] == 0
            assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"]
            # 5 unique task sets cycled 8x: the cache must be doing the work
            assert service.cache.hits >= 30

        _run(scenario, _config(batch_window=0.002, batch_max=16))

    def test_loadgen_mixed_workload(self):
        async def scenario(service):
            stats = await run_loadgen(
                "127.0.0.1", service.port,
                n_requests=12, concurrency=3, n_tasks=3, unique=12,
                optimal_frac=0.25, admit_frac=0.25, include_schedule=False,
            )
            assert stats["ok"] == 12
            snap = service.metrics.snapshot()["counters"]
            assert snap["requests_total:/optimal"] == 3
            assert snap["requests_total:/admit"] == 3
            assert snap["requests_total:/schedule"] == 6

        _run(scenario)
