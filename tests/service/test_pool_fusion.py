"""Fused batch solving must be indistinguishable from per-job solving.

``solve_schedule_batch`` fuses same-platform jobs into one vectorized
pipeline pass over disjoint time windows.  These tests pin the contract:
fusion changes throughput, never results — energies match solo solves,
schedules stay valid, unfusable jobs (``online``, malformed, different
platforms) are isolated, and a poisoned group degrades to per-job solving
instead of failing the batch.
"""

import json

import numpy as np
import pytest

from repro.io.schedio import schedule_from_json
from repro.service.pool import _fuse_key, _solve_one_schedule, solve_schedule_batch
from repro.sim.validate import validate_schedule
from repro.workloads.generator import PaperWorkloadConfig, paper_workload


def _job(rng, n_tasks=3, m=2, method="der", alpha=3.0, static=0.1, include=True):
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=n_tasks))
    return {
        "tasks": [(t.release, t.deadline, t.work, t.name) for t in tasks],
        "m": m,
        "alpha": alpha,
        "static": static,
        "method": method,
        "include_schedule": include,
    }


class TestFuseKey:
    def test_same_platform_shares_a_key(self):
        rng = np.random.default_rng(0)
        a, b = _job(rng), _job(rng)
        assert _fuse_key(a) == _fuse_key(b)

    @pytest.mark.parametrize(
        "override",
        [{"m": 4}, {"alpha": 2.0}, {"static": 0.5}, {"method": "even"}],
    )
    def test_platform_differences_split_groups(self, override):
        rng = np.random.default_rng(0)
        base = _job(rng)
        assert _fuse_key(base) != _fuse_key({**base, **override})

    def test_online_never_fuses(self):
        rng = np.random.default_rng(0)
        assert _fuse_key(_job(rng, method="online")) is None


class TestFusedEqualsSolo:
    def test_energies_and_kinds_match_solo_solves(self):
        rng = np.random.default_rng(1)
        jobs = [_job(rng) for _ in range(8)]
        fused = solve_schedule_batch(jobs)
        for job, got in zip(jobs, fused):
            want = _solve_one_schedule(job)
            assert got["kind"] == want["kind"]
            assert got["energy"] == pytest.approx(want["energy"], rel=1e-9)

    def test_fused_schedules_validate(self):
        rng = np.random.default_rng(2)
        jobs = [_job(rng) for _ in range(6)]
        for result in solve_schedule_batch(jobs):
            schedule = schedule_from_json(json.dumps(result["schedule"]))
            assert validate_schedule(schedule) == []

    def test_include_schedule_false_omits_payload(self):
        rng = np.random.default_rng(3)
        results = solve_schedule_batch([_job(rng, include=False) for _ in range(4)])
        assert all("schedule" not in r for r in results)
        assert all(r["energy"] > 0 for r in results)


class TestMixedBatches:
    def test_mixed_platforms_and_methods_keep_job_order(self):
        rng = np.random.default_rng(4)
        jobs = [
            _job(rng, m=2),
            _job(rng, m=4),
            _job(rng, method="online"),
            _job(rng, m=2),
            _job(rng, method="even"),
            _job(rng, m=4),
        ]
        results = solve_schedule_batch(jobs)
        assert [r["m"] for r in results] == [2, 4, 2, 2, 2, 4]
        assert results[2]["kind"] == "online"
        assert "replans" in results[2]
        assert results[4]["kind"] == "S^F1"
        for job, got in zip(jobs, results):
            want = _solve_one_schedule(job)
            assert got["energy"] == pytest.approx(want["energy"], rel=1e-9)

    def test_malformed_job_errors_alone(self):
        rng = np.random.default_rng(5)
        bad = {"tasks": [(0.0, 1.0, 5.0, "t")], "m": 2, "method": "der"}  # no alpha
        jobs = [_job(rng), bad, _job(rng)]
        results = solve_schedule_batch(jobs)
        assert "error" in results[1]
        assert "error" not in results[0] and "error" not in results[2]

    def test_infeasible_instance_poisons_only_itself(self):
        rng = np.random.default_rng(6)
        # zero-work task: Task validation rejects it inside the worker
        bad = {
            "tasks": [(0.0, 1.0, -5.0, "t")],
            "m": 2,
            "alpha": 3.0,
            "static": 0.1,
            "method": "der",
        }
        jobs = [_job(rng), bad, _job(rng)]
        results = solve_schedule_batch(jobs)
        assert "error" in results[1]
        for job, got in ((jobs[0], results[0]), (jobs[2], results[2])):
            assert got["energy"] == pytest.approx(
                _solve_one_schedule(job)["energy"], rel=1e-9
            )
