"""Fault injection, worker supervision, and the service's chaos paths.

Thread-mode (``workers=0``) dispatchers make supervision deterministic:
``kill=1.0`` crashes every first attempt via ``SimulatedWorkerCrash`` and
the retry must reproduce the clean result bit-for-bit.  One test exercises
the real ``ProcessPoolExecutor`` path — an actual SIGKILLed worker,
respawn, and re-dispatch — and is the slowest test in this file.
"""

import asyncio
import time

import pytest

from repro.engine import register
from repro.engine.registry import _REGISTRY
from repro.service import SchedulingService, ServiceConfig
from repro.service.config import RetryPolicy
from repro.service.faults import (
    MALFORMED_MENU,
    FaultInjector,
    FaultSpec,
    SimulatedWorkerCrash,
)
from repro.service.loadgen import request_once
from repro.service.metrics import MetricsRegistry
from repro.service.pool import SolveDispatcher

_ROWS = [(0.0, 10.0, 6.0), (2.0, 14.0, 5.0), (4.0, 16.0, 7.0)]


def _job(rows=_ROWS, **over) -> dict:
    return {
        "tasks": [[r, d, c, f"t{i}"] for i, (r, d, c) in enumerate(rows)],
        "m": 2,
        "alpha": 3.0,
        "static": 0.1,
        "method": "der",
        "include_schedule": False,
        **over,
    }


def _jobs(n: int) -> list[dict]:
    # distinct work per job so energies genuinely differ across jobs
    return [
        _job([(r, d, c + i) for (r, d, c) in _ROWS]) for i in range(n)
    ]


class TestFaultSpec:
    def test_parse_format_round_trip(self):
        spec = FaultSpec.parse("kill=0.05,delay=0.1:0.02,drop=0.02,malform=0.1,seed=7")
        assert spec.kill_rate == 0.05
        assert spec.delay_rate == 0.1
        assert spec.delay_s == 0.02
        assert spec.drop_rate == 0.02
        assert spec.malform_rate == 0.1
        assert spec.seed == 7
        assert FaultSpec.parse(spec.format()) == spec

    def test_empty_spec_is_disabled(self):
        spec = FaultSpec.parse("")
        assert spec == FaultSpec()
        assert not spec.enabled
        assert FaultSpec.parse("   ") == spec

    def test_delay_without_seconds_keeps_the_default(self):
        spec = FaultSpec.parse("delay=0.5")
        assert spec.delay_rate == 0.5
        assert spec.delay_s == FaultSpec().delay_s

    def test_any_nonzero_rate_enables(self):
        assert FaultSpec.parse("drop=0.01").enabled
        assert not FaultSpec.parse("seed=9").enabled

    @pytest.mark.parametrize(
        "bad",
        ["bogus=1", "kill", "kill=high", "kill=0.1,delay=a:b", "=0.5"],
    )
    def test_malformed_spec_strings_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_out_of_range_rates_raise(self):
        with pytest.raises(ValueError, match="kill_rate"):
            FaultSpec(kill_rate=1.5)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSpec(drop_rate=-0.1)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(delay_s=-1.0)


class TestFaultInjector:
    def test_same_seed_replays_the_same_decisions(self):
        spec = FaultSpec.parse("kill=0.3,drop=0.4,malform=0.5,seed=42")
        a, b = FaultInjector(spec), FaultInjector(spec)
        decisions_a = [
            (a.should_kill(), a.should_drop(), a.should_malform())
            for _ in range(50)
        ]
        decisions_b = [
            (b.should_kill(), b.should_drop(), b.should_malform())
            for _ in range(50)
        ]
        assert decisions_a == decisions_b
        assert a.counts == b.counts

    def test_retries_never_killed_and_consume_no_randomness(self):
        spec = FaultSpec.parse("kill=0.5,seed=7")
        plain, interleaved = FaultInjector(spec), FaultInjector(spec)
        seq = []
        for _ in range(30):
            # attempt>0 probes must not advance the RNG stream: the
            # attempt-0 sequence stays identical with them interleaved
            assert interleaved.should_kill(attempt=1) is False
            seq.append(interleaved.should_kill(attempt=0))
        assert seq == [plain.should_kill(attempt=0) for _ in range(30)]
        assert interleaved.counts["kill"] == plain.counts["kill"] > 0

    def test_malformed_payloads_cycle_the_menu(self):
        injector = FaultInjector(FaultSpec.parse("malform=1.0,seed=0"))
        n = len(MALFORMED_MENU)
        seen = []
        for _ in range(n + 3):
            assert injector.should_malform()
            seen.append(injector.malformed_payload())
        # the cycle position tracks the injection count, so one full lap
        # covers every menu entry exactly once before repeating
        assert seen[:n] == [MALFORMED_MENU[(i + 1) % n] for i in range(n)]
        assert seen[n] == seen[0]

    def test_maybe_delay_sleeps_and_counts(self):
        injector = FaultInjector(FaultSpec.parse("delay=1.0:0.01,seed=0"))

        async def scenario():
            t0 = time.perf_counter()
            await injector.maybe_delay()
            return time.perf_counter() - t0

        assert asyncio.run(scenario()) >= 0.01
        assert injector.counts["delay"] == 1

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultSpec())
        for _ in range(20):
            assert not injector.should_kill()
            assert not injector.should_drop()
            assert not injector.should_malform()
        assert sum(injector.counts.values()) == 0


class TestThreadModeSupervision:
    def test_killed_dispatch_retries_bit_identical(self):
        """The acceptance bar: retried jobs match unfaulted solves exactly."""
        jobs = _jobs(3)
        clean = SolveDispatcher(0)
        baseline = asyncio.run(clean.solve_batch(jobs))

        metrics = MetricsRegistry()
        chaotic = SolveDispatcher(
            0,
            metrics=metrics,
            retry=RetryPolicy(max_retries=1, backoff_base=0.001),
            injector=FaultInjector(FaultSpec.parse("kill=1.0,seed=3")),
        )
        results = asyncio.run(chaotic.solve_batch(jobs))

        assert [r.get("error") for r in results] == [None] * 3
        assert [r["energy"] for r in results] == [
            r["energy"] for r in baseline
        ]
        assert metrics.counter("worker_restarts").value == 1
        assert metrics.counter("job_retries").value == 3
        assert metrics.counter("jobs_abandoned").value == 0

    def test_exhausted_retry_budget_abandons_cleanly(self):
        metrics = MetricsRegistry()
        dispatcher = SolveDispatcher(
            0,
            metrics=metrics,
            retry=RetryPolicy(max_retries=0),
            injector=FaultInjector(FaultSpec.parse("kill=1.0,seed=3")),
        )
        results = asyncio.run(dispatcher.solve_batch(_jobs(3)))
        for r in results:
            assert r["abandoned"] is True
            assert "crash" in r["error"]
        assert metrics.counter("jobs_abandoned").value == 3
        assert metrics.counter("job_retries").value == 0

    def test_optimal_dispatch_is_supervised_too(self):
        metrics = MetricsRegistry()
        dispatcher = SolveDispatcher(
            0,
            metrics=metrics,
            retry=RetryPolicy(max_retries=1, backoff_base=0.001),
            injector=FaultInjector(FaultSpec.parse("kill=1.0,seed=3")),
        )
        job = {**_job(), "solver": "optimal:slsqp"}
        job.pop("method")
        result = asyncio.run(dispatcher.solve_optimal(job))
        assert "error" not in result
        assert result["energy"] > 0
        assert metrics.counter("job_retries").value == 1

    def test_retry_delay_is_jittered_exponential(self):
        import random

        policy = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_cap=0.15)
        rng = random.Random(0)
        d1 = [policy.delay(1, rng) for _ in range(100)]
        d2 = [policy.delay(2, rng) for _ in range(100)]
        assert all(0.05 <= d <= 0.1 for d in d1)
        assert all(0.075 <= d <= 0.15 for d in d2)  # capped at 0.15
        with pytest.raises(ValueError):
            policy.delay(0, rng)


class TestRealPoolSupervision:
    def test_sigkilled_worker_is_respawned_and_the_job_retried(self):
        """Real ProcessPoolExecutor: SIGKILL a live worker, survive it."""
        clean = SolveDispatcher(0)
        baseline = asyncio.run(clean.solve_batch([_job()]))

        metrics = MetricsRegistry()
        dispatcher = SolveDispatcher(
            1,
            metrics=metrics,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01),
        )
        try:

            async def scenario():
                # warm-up spawns the worker process so the chaos kill below
                # lands on a live pid rather than simulating the crash
                warm = await dispatcher.solve_batch([_job()])
                assert "error" not in warm[0]
                dispatcher.injector = FaultInjector(
                    FaultSpec.parse("kill=1.0,seed=5")
                )
                return await dispatcher.solve_batch([_job()])

            results = asyncio.run(scenario())
        finally:
            dispatcher.shutdown()

        assert "error" not in results[0]
        assert results[0]["energy"] == baseline[0]["energy"]
        assert dispatcher.injector.counts["kill"] >= 1
        assert metrics.counter("worker_restarts").value >= 1
        assert metrics.counter("job_retries").value >= 1
        assert metrics.counter("jobs_abandoned").value == 0


_BASE = dict(port=0, workers=0, log_interval=0)


def _config(**kwargs) -> ServiceConfig:
    return ServiceConfig(**{**_BASE, **kwargs})


def _run(test_coro, config: ServiceConfig | None = None):
    async def runner():
        service = SchedulingService(config or _config())
        await service.start()
        try:
            return await test_coro(service)
        finally:
            await service.stop()

    return asyncio.run(runner())


class TestServiceFaultPaths:
    def test_config_rejects_bad_fault_spec(self):
        with pytest.raises(ValueError, match="fault"):
            ServiceConfig(faults="bogus=1")

    def test_every_malformed_menu_entry_gets_400_never_500(self):
        async def scenario(service):
            for payload in MALFORMED_MENU:
                status, body = await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule", payload
                )
                assert status == 400, (status, payload)
                assert "error" in body

        _run(scenario)

    def test_dropped_responses_surface_as_connection_errors(self):
        async def scenario(service):
            with pytest.raises(ConnectionError):
                await request_once(
                    "127.0.0.1",
                    service.port,
                    "POST",
                    "/schedule",
                    {"tasks": [[0.0, 10.0, 5.0]]},
                )
            # the one-shot client retried once transparently, so the
            # server dropped (at least) two responses on purpose
            assert service.injector.counts["drop"] >= 2
            assert (
                service.metrics.counter("faults_dropped_responses").value >= 2
            )

        _run(scenario, _config(faults="drop=1.0,seed=1"))

    def test_delayed_responses_still_answer_200(self):
        async def scenario(service):
            t0 = time.perf_counter()
            status, body = await request_once(
                "127.0.0.1",
                service.port,
                "POST",
                "/schedule",
                {"tasks": [[0.0, 10.0, 5.0]], "include_schedule": False},
            )
            assert status == 200
            assert body["energy"] > 0
            assert time.perf_counter() - t0 >= 0.03
            assert service.injector.counts["delay"] == 1

        _run(scenario, _config(faults="delay=1.0:0.03,seed=1"))

    def test_metrics_endpoint_reports_fault_counts(self):
        async def scenario(service):
            await request_once(
                "127.0.0.1",
                service.port,
                "POST",
                "/schedule",
                {"tasks": [[0.0, 10.0, 5.0]], "include_schedule": False},
            )
            status, body = await request_once(
                "127.0.0.1", service.port, "GET", "/metrics"
            )
            assert status == 200
            faults = body["faults"]
            assert faults["spec"] == "delay=1:0.001,seed=4"
            assert set(faults) >= {"kill", "delay", "drop", "malform"}

        _run(scenario, _config(faults="delay=1.0:0.001,seed=4"))

    def test_unfaulted_service_reports_no_faults_section(self):
        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "GET", "/metrics"
            )
            assert status == 200
            assert body["faults"] is None
            assert service.injector is None

        _run(scenario)


class TestServiceDegradation:
    @pytest.fixture
    def hanging_solver(self):
        name = "optimal:test-hang-svc"

        @register(name)
        def _hang(request, options):  # pragma: no cover - parked, abandoned
            time.sleep(30.0)

        yield name
        _REGISTRY.pop(name, None)

    def test_hung_optimal_solver_degrades_not_500(self, hanging_solver):
        async def scenario(service):
            t0 = time.perf_counter()
            status, body = await request_once(
                "127.0.0.1",
                service.port,
                "POST",
                "/optimal",
                {"tasks": [[0.0, 10.0, 5.0], [2.0, 12.0, 4.0]], "m": 2,
                 "solver": hanging_solver},
            )
            assert time.perf_counter() - t0 < 10.0
            assert status == 200
            assert body["degraded"] is True
            assert body["degraded_from"] == hanging_solver
            assert body["solver"] == "subinterval-der"
            assert "timeout" in body["degraded_reason"]
            assert body["energy"] > 0

            status, metrics = await request_once(
                "127.0.0.1", service.port, "GET", "/metrics"
            )
            assert status == 200
            assert metrics["metrics"]["counters"]["degraded_total"] >= 1

        _run(
            scenario,
            _config(solver_timeout=0.2, degrade_to="subinterval-der"),
        )

    def test_degraded_results_are_never_cached(self, hanging_solver):
        async def scenario(service):
            payload = {
                "tasks": [[0.0, 10.0, 5.0], [2.0, 12.0, 4.0]], "m": 2,
                "solver": hanging_solver,
            }
            for _ in range(2):
                status, body = await request_once(
                    "127.0.0.1", service.port, "POST", "/optimal", payload
                )
                assert status == 200
                assert body["degraded"] is True
                assert body.get("cache_hit") is not True
            assert service.cache.hits == 0

        _run(
            scenario,
            _config(solver_timeout=0.2, degrade_to="subinterval-der"),
        )
