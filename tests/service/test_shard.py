"""The scale-out tier: consistent-hash ring, platform keys, shard router.

Pure-logic tests (HashRing, platform_key, shard_config) run everywhere;
the router end-to-end tests spawn real shard processes and are kept to
two small deployments to stay cheap.  The sharding contract:

* ``HashRing`` is deterministic across processes (SHA-256, not
  ``hash()``) and removing a node only reassigns that node's keys,
* ``platform_key`` normalizes spelling (``3`` vs ``3.0``) and fills
  config defaults, so equivalent platforms land on one shard,
* ``/admit`` traffic for one platform always reaches the same shard,
  and a killed shard is respawned with its session replayed — the
  stream continues as if nothing happened,
* a sharded deployment is observationally identical to the
  single-process engine (bit-equal admit responses and plan snapshots).
"""

import asyncio
import json
import os
import signal

import pytest

from repro.service import SchedulingService, ServiceConfig, ShardRouter
from repro.service.loadgen import HttpClient, request_once
from repro.service.shard import HashRing, platform_key, shard_config

_BASE = dict(port=0, workers=0, log_interval=0, batch_window=0.0)


def _config(**kwargs) -> ServiceConfig:
    return ServiceConfig(**{**_BASE, **kwargs})


class TestHashRing:
    def test_deterministic_lookup(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        keys = [f"key-{i}" for i in range(200)]
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]

    def test_covers_all_nodes(self):
        ring = HashRing(range(4))
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_remove_only_moves_the_removed_nodes_keys(self):
        ring = HashRing(range(4))
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        for k in keys:
            after = ring.lookup(k)
            if before[k] != 2:
                assert after == before[k]
            else:
                assert after != 2

    def test_readding_restores_the_original_assignment(self):
        ring = HashRing(range(4))
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(LookupError):
            HashRing().lookup("anything")


class TestPlatformKey:
    def test_numeric_spelling_is_normalized(self):
        config = _config()
        assert (platform_key({"m": 3, "f_max": 2}, config)
                == platform_key({"m": 3.0, "f_max": 2.0}, config))

    def test_defaults_fill_missing_fields(self):
        config = _config(m=4, f_max=2.0)
        assert (platform_key({}, config)
                == platform_key({"m": 4, "f_max": 2.0}, config))

    def test_distinct_platforms_get_distinct_keys(self):
        config = _config()
        keys = {
            platform_key(body, config)
            for body in ({}, {"f_max": 2.0}, {"m": 2}, {"static": 0.05},
                         {"alpha": 2.0})
        }
        assert len(keys) == 5

    def test_key_order_is_irrelevant(self):
        config = _config()
        assert (platform_key({"m": 2, "f_max": 2.0}, config)
                == platform_key({"f_max": 2.0, "m": 2}, config))


class TestShardConfig:
    def test_derived_config_is_a_private_listener(self):
        base = _config(host="0.0.0.0", port=8080, shards=4,
                       trace_path="/tmp/t.jsonl")
        derived = shard_config(base, 2)
        assert derived.host == "127.0.0.1"
        assert derived.port == 0
        assert derived.shards == 0  # a shard never re-shards
        assert derived.shard_id == 2
        assert derived.trace_path == "/tmp/t.jsonl.shard2"
        assert base.shard_id is None  # base untouched


def _admit_stream(n: int, seed: int) -> list[list[float]]:
    import numpy as np

    rng = np.random.default_rng(seed)
    releases = np.cumsum(rng.exponential(1.0, size=n))
    works = rng.uniform(5.0, 15.0, size=n)
    return [[float(r), float(r + w * 1.5), float(w)]
            for r, w in zip(releases, works)]


class TestRouterEndToEnd:
    def test_affinity_replay_and_single_process_equivalence(self):
        """One boot, three assertions: every /admit for a platform lands on
        one shard; killing that shard mid-stream is invisible to the
        client; the full stream matches a bare SchedulingService."""
        platforms = ({"f_max": 2.0}, {"f_max": 3.0, "m": 2})
        streams = {i: _admit_stream(8, 11 + i) for i in range(len(platforms))}

        async def scenario():
            router = ShardRouter(_config(), shards=2)
            await router.start()
            sharded: dict[int, list[str]] = {0: [], 1: []}
            owner_shards: dict[int, set] = {0: set(), 1: set()}
            try:
                client = HttpClient("127.0.0.1", router.port)
                await client.connect()
                try:
                    for i, platform in enumerate(platforms):
                        await client.request(
                            "POST", "/admit", {"reset": True, **platform}
                        )
                    # first half of each stream, interleaved
                    for step in range(4):
                        for i, platform in enumerate(platforms):
                            status, body = await client.request(
                                "POST", "/v1/admit",
                                {"task": streams[i][step], **platform},
                            )
                            assert status == 200
                            owner_shards[i].add(body["meta"]["shard"])
                            sharded[i].append(
                                json.dumps(body["result"], sort_keys=True)
                            )
                    # consistent hashing: one owner per platform so far
                    assert all(len(s) == 1 for s in owner_shards.values())

                    # SIGKILL platform 0's owning shard mid-stream
                    victim = next(iter(owner_shards[0]))
                    pid = router.manager.get(victim).process.pid
                    os.kill(pid, signal.SIGKILL)
                    await asyncio.sleep(0.1)

                    for step in range(4, 8):
                        for i, platform in enumerate(platforms):
                            status, body = await client.request(
                                "POST", "/v1/admit",
                                {"task": streams[i][step], **platform},
                            )
                            assert status == 200, body
                            owner_shards[i].add(body["meta"]["shard"])
                            sharded[i].append(
                                json.dumps(body["result"], sort_keys=True)
                            )
                    # the respawned shard rejoins at the same ring position
                    assert all(len(s) == 1 for s in owner_shards.values())
                    assert router.manager.get(victim).restarts >= 1

                    peeks = []
                    for platform in platforms:
                        _, body = await client.request(
                            "POST", "/v1/admit", {"peek": True, **platform}
                        )
                        peeks.append(
                            json.dumps(body["result"], sort_keys=True)
                        )
                finally:
                    await client.close()
            finally:
                await router.stop()

            # replay the identical streams against the bare engine
            service = SchedulingService(_config())
            await service.start()
            single: dict[int, list[str]] = {0: [], 1: []}
            try:
                client = HttpClient("127.0.0.1", service.port)
                await client.connect()
                try:
                    for platform in platforms:
                        await client.request(
                            "POST", "/admit", {"reset": True, **platform}
                        )
                    for step in range(8):
                        for i, platform in enumerate(platforms):
                            _, body = await client.request(
                                "POST", "/v1/admit",
                                {"task": streams[i][step], **platform},
                            )
                            single[i].append(
                                json.dumps(body["result"], sort_keys=True)
                            )
                    single_peeks = []
                    for platform in platforms:
                        _, body = await client.request(
                            "POST", "/v1/admit", {"peek": True, **platform}
                        )
                        single_peeks.append(
                            json.dumps(body["result"], sort_keys=True)
                        )
                finally:
                    await client.close()
            finally:
                await service.stop()

            # bit-equal: every per-event ack and the final plan snapshots,
            # despite the SIGKILL + replay in the sharded run
            assert sharded == single
            assert peeks == single_peeks

        asyncio.run(scenario())

    def test_stateless_routes_balance_and_metrics_merge(self):
        async def scenario():
            router = ShardRouter(_config(), shards=2)
            await router.start()
            try:
                client = HttpClient("127.0.0.1", router.port)
                await client.connect()
                try:
                    shards_seen = set()
                    for i in range(6):
                        status, body = await client.request(
                            "POST", "/v1/schedule",
                            {"tasks": [[0.0, 10.0, 2.0 + i]],
                             "include_schedule": False},
                        )
                        assert status == 200
                        shards_seen.add(body["meta"]["shard"])
                finally:
                    await client.close()
                # sequential keep-alive traffic: zero outstanding at each
                # pick, so round-robin tie-break spreads over both shards
                assert shards_seen == {0, 1}

                status, body = await request_once(
                    "127.0.0.1", router.port, "GET", "/v1/metrics"
                )
                assert status == 200
                result = body["result"]
                assert set(result["shards"]) == {"0", "1"}
                per_shard = [
                    result["shards"][s]["metrics"]["counters"].get(
                        "requests_total:/v1/schedule", 0
                    )
                    for s in ("0", "1")
                ]
                assert sum(per_shard) == 6
                assert all(c > 0 for c in per_shard)
                assert result["router"]["shards"] == 2
                status_rows = result["router"]["shard_status"]
                assert [r["alive"] for r in status_rows] == [True, True]

                status, body = await request_once(
                    "127.0.0.1", router.port, "GET", "/v1/healthz"
                )
                assert status == 200
                assert body["result"]["status"] == "ok"
                assert [s["alive"] for s in body["result"]["shards"]] == [
                    True, True
                ]
            finally:
                await router.stop()

        asyncio.run(scenario())


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
