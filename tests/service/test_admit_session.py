"""Session-backed admission: per-platform sessions, delta accounting, spans."""

import asyncio

from repro.service import SchedulingService, ServiceConfig
from repro.service.loadgen import HttpClient, request_once, run_loadgen

_BASE = dict(port=0, workers=0, log_interval=0)


def _config(**kwargs) -> ServiceConfig:
    return ServiceConfig(**{**_BASE, **kwargs})


def _run(test_coro, config: ServiceConfig | None = None):
    async def runner():
        service = SchedulingService(config or _config())
        await service.start()
        try:
            return await test_coro(service)
        finally:
            await service.stop()

    return asyncio.run(runner())


class TestPerPlatformSessions:
    def test_platforms_do_not_share_committed_sets(self):
        """Admissions on m=1/f_max=1 must not consume m=4 capacity."""

        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                # saturate the single-core platform
                _, a = await client.request(
                    "POST", "/admit",
                    {"task": [0.0, 10.0, 10.0], "m": 1, "f_max": 1.0},
                )
                _, b = await client.request(
                    "POST", "/admit",
                    {"task": [0.0, 10.0, 10.0], "m": 1, "f_max": 1.0},
                )
                assert a["accepted"] is True and b["accepted"] is False
                assert a["f_max"] == 1.0
                # the wider default platform is untouched
                _, c = await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 10.0]}
                )
                assert c["accepted"] is True
                assert c["committed"] == 1
            finally:
                await client.close()

        _run(scenario, _config(m=4, f_max=1.0))

    def test_reset_targets_one_platform(self):
        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 4.0]}
                )
                await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 4.0], "m": 8}
                )
                _, r = await client.request(
                    "POST", "/admit", {"reset": True, "m": 8}
                )
                assert r["committed"] == 0
                # the default platform still holds its task
                _, d = await client.request(
                    "POST", "/admit", {"task": [1.0, 11.0, 2.0]}
                )
                assert d["committed"] == 2
            finally:
                await client.close()

        _run(scenario)

    def test_admit_reports_delta_accounting(self):
        async def scenario(service):
            client = HttpClient("127.0.0.1", service.port)
            await client.connect()
            try:
                _, first = await client.request(
                    "POST", "/admit", {"task": [0.0, 10.0, 4.0]}
                )
                _, second = await client.request(
                    "POST", "/admit", {"task": [20.0, 30.0, 4.0]}
                )
                assert first["accepted"] and second["accepted"]
                assert first["touched_subintervals"] == first["total_subintervals"] == 1
                # disjoint window: only the new column is touched (the
                # total counts the empty gap column between the windows)
                assert second["touched_subintervals"] == 1
                assert second["total_subintervals"] == 3
            finally:
                await client.close()

        _run(scenario)

    def test_admit_emits_session_delta_spans(self):
        async def scenario(service):
            await request_once(
                "127.0.0.1", service.port, "POST", "/admit",
                {"task": [0.0, 10.0, 4.0]},
            )
            snap = service.metrics.snapshot()
            hist = snap["histograms"].get("stage_ms:session.delta")
            assert hist is not None and hist["count"] >= 1

        _run(scenario)


class TestAdmitStreamLoadgen:
    def test_admit_stream_round_trip(self):
        async def scenario(service):
            stats = await run_loadgen(
                "127.0.0.1", service.port,
                n_requests=20, concurrency=4, seed=7,
                admit_stream=True, admit_rate=2.0,
            )
            assert stats["ok"] == 20
            assert stats["errors"] == 0
            admit = stats["admit"]
            assert admit["accepted"] + admit["rejected"] == 20
            assert admit["accepted"] > 0
            snap = service.metrics.snapshot()["counters"]
            assert snap["requests_total:/admit"] >= 20

        _run(scenario)
