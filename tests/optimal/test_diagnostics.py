"""Tests for interior-point convergence diagnostics."""

import numpy as np
import pytest

from repro.core import Timeline
from repro.optimal import ConvexProblem, IPConfig, solve_optimal, solve_with_trace
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def trace():
    tasks, power = random_instance(0, n=10)
    problem = ConvexProblem(Timeline(tasks), 4, power)
    return solve_with_trace(problem)


class TestTrace:
    def test_solution_matches_plain_solver(self, trace):
        tasks, power = random_instance(0, n=10)
        plain = solve_optimal(tasks, 4, power)
        assert trace.solution.energy == pytest.approx(plain.energy, rel=1e-9)

    def test_gaps_shrink_geometrically(self, trace):
        assert len(trace.records) >= 3
        assert trace.is_linearly_converging(factor=2.0)

    def test_gap_matches_mu_schedule(self, trace):
        # gap_k = n_ineq / t_k with t growing by exactly mu
        g = trace.gaps
        ratios = g[:-1] / g[1:]
        np.testing.assert_allclose(ratios, IPConfig().mu)

    def test_objectives_monotone_toward_optimum(self, trace):
        # the central path's objective decreases toward the optimum
        obj = trace.objectives
        assert obj[-1] <= obj[0] + 1e-9
        assert obj[-1] == pytest.approx(trace.solution.energy, rel=1e-6)

    def test_newton_iterations_cumulative(self, trace):
        its = [r.newton_iterations for r in trace.records]
        assert all(b >= a for a, b in zip(its, its[1:]))
        assert trace.total_newton_iterations == its[-1]

    def test_final_gap_below_tolerance(self, trace):
        cfg = IPConfig()
        assert trace.records[-1].gap <= cfg.gap_tol * max(
            abs(trace.solution.energy), 1.0
        )
