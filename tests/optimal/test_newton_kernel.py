"""Tests for the structure-exploiting Newton kernels and warm starts."""

import numpy as np
import pytest

from repro.core import Timeline
from repro.core.core_selection import (
    select_core_count,
    select_core_count_optimal,
)
from repro.core.task import TaskSet
from repro.engine import Platform, SolveRequest, solve
from repro.engine.registry import solver_names
from repro.optimal import (
    ConvexProblem,
    InteriorPointSolver,
    WarmStart,
    project_capped_box,
    project_columns,
    repair_warm_start,
    solve_optimal,
    solve_optimal_capped,
    solve_problem,
    warm_start_cache,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance

REL_TOL = 1e-9  # pinned cross-kernel / warm-vs-cold agreement


def _problem(seed, n=12, m=4):
    tasks, power = random_instance(seed, n=n)
    return ConvexProblem(Timeline(tasks), m, power)


def _rel(a, b):
    return abs(a - b) / max(abs(b), 1.0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    warm_start_cache().clear()
    yield
    warm_start_cache().clear()


class TestKernelEquality:
    """Every kernel must reproduce the dense oracle's energy."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("kernel", ["auto", "banded", "schur"])
    def test_structured_matches_dense(self, seed, kernel):
        p = _problem(seed, n=14, m=4)
        dense = InteriorPointSolver(p, kernel="dense").solve()
        structured = InteriorPointSolver(p, kernel=kernel).solve()
        assert structured.profile.kernel in ("banded", "schur", "dense")
        assert _rel(structured.energy, dense.energy) <= REL_TOL

    def test_kernel_actually_differs_from_dense(self):
        p = _problem(0, n=14)
        s = InteriorPointSolver(p, kernel="banded")
        assert s.kernel == "banded"
        d = InteriorPointSolver(p, kernel="dense")
        assert d.kernel == "dense"

    def test_invalid_kernel_rejected(self):
        p = _problem(0)
        with pytest.raises(ValueError, match="kernel"):
            InteriorPointSolver(p, kernel="cholesky")

    @pytest.mark.parametrize("kernel", ["banded", "schur"])
    def test_capped_structured_matches_dense(self, kernel):
        # the capped program has no polish; matching flail floors keep the
        # kernels within a looser (still tight) band
        tasks, power = random_instance(7, n=10)
        dense = solve_optimal_capped(tasks, 4, power, f_max=2.5, kernel="dense")
        structured = solve_optimal_capped(
            tasks, 4, power, f_max=2.5, kernel=kernel
        )
        assert _rel(structured.energy, dense.energy) <= 1e-8
        assert np.all(structured.frequencies <= 2.5 * (1 + 1e-9))


class TestDegenerateStructures:
    """Shapes that stress the banded/Schur assembly paths."""

    def test_single_subinterval(self):
        # all tasks share one window: J = 1, the band is a scalar
        tasks = TaskSet.from_arrays(
            np.zeros(5), np.full(5, 2.0), np.full(5, 0.4)
        )
        power = PolynomialPower(alpha=3.0, static=0.1)
        dense = solve_optimal(tasks, 3, power, kernel="dense")
        for kernel in ("auto", "banded", "schur"):
            sol = solve_optimal(tasks, 3, power, kernel=kernel)
            assert _rel(sol.energy, dense.energy) <= REL_TOL

    def test_full_overlap_heavy_band(self):
        # staircase releases with one common deadline: maximal bandwidth
        n = 8
        rel = np.linspace(0.0, 3.5, n)
        tasks = TaskSet.from_arrays(rel, np.full(n, 4.0), np.full(n, 0.3))
        power = PolynomialPower(alpha=3.0, static=0.1)
        p = ConvexProblem(Timeline(tasks), 2, power)
        assert p.sub_bandwidth == p.n_subs - 1  # every column overlaps
        dense = InteriorPointSolver(p, kernel="dense").solve()
        for kernel in ("banded", "schur"):
            sol = InteriorPointSolver(p, kernel=kernel).solve()
            assert _rel(sol.energy, dense.energy) <= REL_TOL

    def test_single_task(self):
        tasks = TaskSet.from_arrays(
            np.array([0.0]), np.array([1.5]), np.array([0.6])
        )
        power = PolynomialPower(alpha=3.0, static=0.1)
        dense = solve_optimal(tasks, 2, power, kernel="dense")
        for kernel in ("auto", "banded", "schur"):
            sol = solve_optimal(tasks, 2, power, kernel=kernel)
            assert _rel(sol.energy, dense.energy) <= REL_TOL
        # the closed-form optimum stretches the task over its window
        assert dense.available_times[0] == pytest.approx(1.5, rel=1e-6)


class TestWarmStarts:
    def test_warm_matches_cold_every_backend(self):
        tasks, power = random_instance(5, n=10)
        for name in solver_names():
            if not name.startswith("optimal:"):
                continue
            warm_start_cache().clear()
            cold = solve(
                name,
                SolveRequest(tasks=tasks, platform=Platform(m=4, power=power)),
                validate=False,
                materialize=False,
                warm=False,
            )
            warm_start_cache().clear()
            solve(  # prime the cache with a certified iterate
                "optimal:interior-point",
                SolveRequest(tasks=tasks, platform=Platform(m=4, power=power)),
                validate=False,
                materialize=False,
            )
            warm = solve(
                name,
                SolveRequest(tasks=tasks, platform=Platform(m=4, power=power)),
                validate=False,
                materialize=False,
                warm="auto",
            )
            assert _rel(warm.energy, cold.energy) <= REL_TOL, name

    def test_warm_reduces_newton_iterations(self):
        p = _problem(3, n=12)
        cold = solve_problem(p, warm="auto")
        warm = solve_problem(p, warm="auto")
        assert warm.profile.warm_started
        assert not cold.profile.warm_started
        assert warm.profile.total_newton < cold.profile.total_newton
        assert _rel(warm.energy, cold.energy) <= REL_TOL

    def test_pg_seed_matches_cold(self):
        p = _problem(9, n=12)
        cold = solve_problem(p)
        seeded = solve_problem(p, warm="pg")
        assert seeded.profile.warm_started
        assert _rel(seeded.energy, cold.energy) <= REL_TOL

    def test_unusable_warm_degrades_to_cold(self):
        p = _problem(2)
        bad = WarmStart(x=np.full(3, np.nan), t=1e6)
        sol = solve_problem(p, warm=bad)
        assert not sol.profile.warm_started  # silently cold
        assert np.isfinite(sol.energy)

    def test_unknown_warm_source_rejected(self):
        p = _problem(2)
        with pytest.raises(ValueError, match="warm"):
            solve_problem(p, warm="tepid")

    def test_repair_restores_strict_feasibility(self):
        # a converged iterate for m=2 hugs constraints the m=1 program
        # violates outright; the repair must pull it strictly inside
        tasks, power = random_instance(4, n=10)
        tl = Timeline(tasks)
        donor = solve_problem(ConvexProblem(tl, 2, power))
        target = ConvexProblem(tl, 1, power)
        x = repair_warm_start(target, donor.x)
        assert x is not None
        assert np.all(x > 0.0)
        assert np.all(x < target.var_len)
        assert np.all(target.column_sums(x) < target.caps)

    def test_repair_rejects_wrong_shape(self):
        p = _problem(2)
        assert repair_warm_start(p, np.ones(p.k + 1)) is None
        assert repair_warm_start(p, None) is None


class TestCoreSelectionSweep:
    def test_heuristic_sweep_shares_timeline(self, monkeypatch):
        import repro.core.core_selection as cs

        built = []
        real = cs.Timeline

        def counting(tasks):
            built.append(1)
            return real(tasks)

        monkeypatch.setattr(cs, "Timeline", counting)
        tasks, power = random_instance(1, n=10)
        sel = select_core_count(tasks, 5, power)
        assert len(built) == 1  # one timeline for the whole sweep
        assert sel.best_m in range(1, 6)
        assert len(sel.profile()) == 5

    def test_optimal_sweep_matches_cold_solves(self):
        tasks, power = random_instance(6, n=10)
        sel = select_core_count_optimal(tasks, 4, power)
        assert len(sel.newton_iterations) == 4
        for i, m in enumerate(sel.counts):
            warm_start_cache().clear()
            cold = solve_optimal(tasks, int(m), power, kernel="dense")
            assert _rel(sel.energies[i], cold.energy) <= REL_TOL
        # energies decrease weakly with more cores (caps only loosen)
        assert np.all(np.diff(sel.energies) <= 1e-9)
        assert sel.best is not None

    def test_optimal_sweep_validates_bounds(self):
        tasks, power = random_instance(0, n=6)
        with pytest.raises(ValueError):
            select_core_count_optimal(tasks, 0, power)


class TestEngineProfile:
    def test_extras_carry_kernel_profile(self):
        tasks, power = random_instance(8, n=10)
        req = SolveRequest(tasks=tasks, platform=Platform(m=4, power=power))
        res = solve(
            "optimal:interior-point", req, validate=False, materialize=False
        )
        ex = res.extras
        assert ex["kernel"] in ("banded", "schur", "dense")
        assert ex["newton_iterations"] == sum(ex["newton_per_center"])
        assert ex["factor_time_s"] >= 0.0
        assert ex["dense_fallbacks"] == 0
        assert isinstance(ex["warm_started"], bool)

    def test_scratch_warm_start_on_repeat_solve(self):
        tasks, power = random_instance(8, n=10)
        req = SolveRequest(tasks=tasks, platform=Platform(m=4, power=power))
        r1 = solve(
            "optimal:interior-point", req, validate=False, materialize=False
        )
        r2 = solve(
            "optimal:interior-point", req, validate=False, materialize=False
        )
        assert not r1.extras["warm_started"]
        assert r2.extras["warm_started"]
        assert (
            r2.extras["newton_iterations"] < r1.extras["newton_iterations"]
        )
        assert _rel(r2.energy, r1.energy) <= REL_TOL

    def test_cold_option_disables_warm(self):
        tasks, power = random_instance(8, n=10)
        req = SolveRequest(tasks=tasks, platform=Platform(m=4, power=power))
        solve("optimal:interior-point", req, validate=False, materialize=False)
        r2 = solve(
            "optimal:interior-point",
            req,
            validate=False,
            materialize=False,
            warm=False,
        )
        assert not r2.extras["warm_started"]


class TestColumnProjection:
    """The vectorized feasible-set projection against the scalar oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_percolumn_bisection(self, seed):
        rng = np.random.default_rng(seed)
        tasks, power = random_instance(seed, n=15)
        p = ConvexProblem(Timeline(tasks), 3, power)
        for _ in range(5):
            y = rng.uniform(-2.0, 3.0, p.k) * np.maximum(p.var_len, 0.1)
            out = project_columns(p, y)
            ref = np.clip(y, 0.0, p.var_len)
            for j in range(p.n_subs):
                mask = p.var_sub == j
                if mask.any():
                    ref[mask] = project_capped_box(
                        y[mask], p.var_len[mask], p.caps[j]
                    )
            np.testing.assert_allclose(out, ref, atol=1e-10)
            col = np.bincount(p.var_sub, weights=out, minlength=p.n_subs)
            assert np.all(col <= p.caps * (1 + 1e-12) + 1e-12)

    def test_interior_point_untouched(self):
        # a strictly feasible point projects to itself
        p = _problem(1)
        x = p.feasible_start()
        np.testing.assert_allclose(project_columns(p, x), x, rtol=1e-12)
