"""Unit tests for the convex problem reformulation."""

import numpy as np
import pytest

from repro.core import TaskSet, Timeline
from repro.optimal import ConvexProblem
from repro.power import PolynomialPower
from tests.conftest import random_instance


@pytest.fixture
def small_problem():
    tasks = TaskSet.from_tuples([(0, 4, 2), (2, 6, 2), (2, 4, 1)])
    return ConvexProblem(Timeline(tasks), 1, PolynomialPower(3.0, 0.1))


class TestStructure:
    def test_variable_count_matches_coverage(self, small_problem):
        p = small_problem
        assert p.k == int(p.timeline.coverage.sum())

    def test_to_from_matrix_roundtrip(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        np.testing.assert_allclose(p.from_matrix(p.to_matrix(x)), x)

    def test_available_times_is_row_sum(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        np.testing.assert_allclose(
            p.available_times(x), p.to_matrix(x).sum(axis=1)
        )

    def test_column_sums(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        np.testing.assert_allclose(p.column_sums(x), p.to_matrix(x).sum(axis=0))

    def test_rejects_bad_m(self, six_tasks, cube_power):
        with pytest.raises(ValueError):
            ConvexProblem(Timeline(six_tasks), 0, cube_power)


class TestObjective:
    def test_objective_matches_closed_form(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        A = p.available_times(x)
        manual = float(
            np.sum(p.works**3 / A**2) + p.power.static * A.sum()
        )
        assert p.objective(x) == pytest.approx(manual)

    def test_objective_inf_at_zero(self, small_problem):
        p = small_problem
        assert p.objective(np.zeros(p.k)) == float("inf")

    def test_gradient_matches_finite_differences(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        g = p.gradient(x)
        eps = 1e-7
        for v in range(p.k):
            xp = x.copy()
            xp[v] += eps
            xm = x.copy()
            xm[v] -= eps
            fd = (p.objective(xp) - p.objective(xm)) / (2 * eps)
            assert g[v] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_hessian_weights_positive(self, small_problem):
        p = small_problem
        h = p.hessian_task_weights(p.feasible_start())
        assert np.all(h > 0)

    def test_objective_convex_along_random_segments(self, rng):
        tasks, power = random_instance(2, n=8)
        p = ConvexProblem(Timeline(tasks), 3, power)
        x0 = p.feasible_start(0.5)
        x1 = p.feasible_start(0.95)
        mid = 0.5 * (x0 + x1)
        assert p.objective(mid) <= 0.5 * (p.objective(x0) + p.objective(x1)) + 1e-9


class TestFeasibility:
    def test_feasible_start_strictly_interior(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        assert np.all(x > 0)
        assert np.all(x < p.var_len)
        assert np.all(p.column_sums(x) < p.caps)

    def test_feasible_start_shrink_validation(self, small_problem):
        with pytest.raises(ValueError):
            small_problem.feasible_start(shrink=1.0)

    def test_check_feasible_passes(self, small_problem):
        small_problem.check_feasible(small_problem.feasible_start())

    def test_check_feasible_catches_negative(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        x[0] = -1.0
        with pytest.raises(AssertionError, match="negative"):
            p.check_feasible(x)

    def test_check_feasible_catches_cap(self, small_problem):
        p = small_problem
        x = p.feasible_start()
        x[0] = p.var_len[0] * 2
        with pytest.raises(AssertionError):
            p.check_feasible(x)

    def test_check_feasible_shape(self, small_problem):
        with pytest.raises(ValueError, match="shape"):
            small_problem.check_feasible(np.zeros(3 + small_problem.k))

    def test_clip_feasible_repairs(self, small_problem):
        p = small_problem
        x = p.feasible_start() * 3.0  # violates caps
        fixed = p.clip_feasible(x)
        p.check_feasible(fixed)
