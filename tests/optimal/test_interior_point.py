"""Unit tests for the structured interior-point solver."""

import numpy as np
import pytest

from repro.core import SubintervalScheduler, TaskSet, Timeline
from repro.optimal import (
    ConvexProblem,
    InteriorPointSolver,
    IPConfig,
    solve_optimal,
    verify_optimality,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance


class TestMotivationalExample:
    """§II: 3 tasks on 2 cores, p(f) = f³ + 0.01, optimum 155/32 + 0.2."""

    def test_energy(self, motivational):
        tasks, power = motivational
        sol = solve_optimal(tasks, 2, power)
        assert sol.energy == pytest.approx(155 / 32 + 0.2, rel=1e-6)

    def test_available_times(self, motivational):
        tasks, power = motivational
        sol = solve_optimal(tasks, 2, power)
        np.testing.assert_allclose(
            sol.available_times, [8 + 8 / 3, 4 + 4 / 3, 4.0], rtol=1e-5
        )

    def test_frequencies(self, motivational):
        tasks, power = motivational
        sol = solve_optimal(tasks, 2, power)
        np.testing.assert_allclose(
            sol.frequencies, [4 / (8 + 8 / 3), 2 / (4 + 4 / 3), 1.0], rtol=1e-5
        )


class TestSolverProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_kkt_certificate(self, seed):
        tasks, power = random_instance(seed, n=10)
        sol = solve_optimal(tasks, 4, power)
        assert verify_optimality(sol.problem, sol.x, tol=1e-3)

    @pytest.mark.parametrize("seed", range(6))
    def test_feasible(self, seed):
        tasks, power = random_instance(seed, n=10)
        sol = solve_optimal(tasks, 4, power)
        sol.problem.check_feasible(sol.x)

    @pytest.mark.parametrize("p0", [0.0, 0.1, 0.5])
    def test_lower_bounds_every_heuristic(self, p0):
        tasks, _ = random_instance(42, n=14)
        power = PolynomialPower(alpha=3.0, static=p0)
        opt = solve_optimal(tasks, 4, power)
        s = SubintervalScheduler(tasks, 4, power)
        for res in s.run_all().values():
            assert opt.energy <= res.energy * (1 + 1e-6)

    def test_gap_certificate_reported(self):
        tasks, power = random_instance(1, n=8)
        sol = solve_optimal(tasks, 2, power)
        assert np.isfinite(sol.gap)
        assert sol.gap <= 1e-6 * max(sol.energy, 1.0)

    def test_single_task_matches_closed_form(self):
        power = PolynomialPower(alpha=2.0, static=0.25)
        tasks = TaskSet.from_tuples([(0, 10, 2)])
        sol = solve_optimal(tasks, 1, power)
        # Fig. 3: optimum uses 4 time units at f = 0.5, E = 2.0
        assert sol.energy == pytest.approx(2.0, rel=1e-6)
        assert sol.available_times[0] == pytest.approx(4.0, rel=1e-4)

    def test_more_cores_never_hurt(self):
        tasks, power = random_instance(5, n=10)
        energies = [solve_optimal(tasks, m, power).energy for m in (1, 2, 4, 8)]
        for a, b in zip(energies, energies[1:]):
            assert b <= a * (1 + 1e-7)

    def test_unlimited_cores_matches_ideal(self):
        tasks, power = random_instance(9, n=8)
        s = SubintervalScheduler(tasks, len(tasks), power)
        sol = solve_optimal(tasks, len(tasks), power)
        assert sol.energy == pytest.approx(s.ideal_energy, rel=1e-6)

    def test_infeasible_start_rejected(self):
        tasks, power = random_instance(0, n=5)
        prob = ConvexProblem(Timeline(tasks), 2, power)
        solver = InteriorPointSolver(prob)
        with pytest.raises(ValueError, match="strictly feasible"):
            solver.solve(x0=np.zeros(prob.k))

    def test_custom_config(self):
        tasks, power = random_instance(3, n=6)
        prob = ConvexProblem(Timeline(tasks), 2, power)
        loose = InteriorPointSolver(prob, IPConfig(gap_tol=1e-4, mu=50.0)).solve()
        tight = InteriorPointSolver(prob, IPConfig(gap_tol=1e-10)).solve()
        assert loose.energy >= tight.energy - 1e-9
        assert abs(loose.energy - tight.energy) < 1e-3 * tight.energy

    def test_iterations_reported(self):
        tasks, power = random_instance(4, n=6)
        sol = solve_optimal(tasks, 2, power)
        assert sol.iterations > 0
        assert sol.solver == "interior-point"
