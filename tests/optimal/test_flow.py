"""Tests for flow-based demand feasibility/realization."""

import numpy as np
import pytest

from repro.core import SubintervalScheduler, TaskSet, Timeline
from repro.core.wrap_schedule import wrap_schedule
from repro.optimal import (
    check_demand_feasibility,
    realize_demands,
    solve_optimal,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance


class TestFeasibility:
    def test_zero_demands_feasible(self):
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1)])
        assert check_demand_feasibility(tasks, 1, [0.0, 0.0])

    def test_full_windows_on_enough_cores(self):
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1)])
        assert check_demand_feasibility(tasks, 2, [4.0, 4.0])

    def test_overload_detected(self):
        # two full-window demands on one core: impossible
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1)])
        assert not check_demand_feasibility(tasks, 1, [4.0, 4.0])

    def test_exact_capacity_boundary(self):
        # 2 + 2 = 4 = 1 core x 4: exactly feasible
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1)])
        assert check_demand_feasibility(tasks, 1, [2.0, 2.0])

    def test_demand_exceeding_window_rejected(self):
        tasks = TaskSet.from_tuples([(0, 4, 1)])
        with pytest.raises(ValueError, match="window"):
            check_demand_feasibility(tasks, 2, [5.0])

    def test_validation(self):
        tasks = TaskSet.from_tuples([(0, 4, 1)])
        with pytest.raises(ValueError):
            realize_demands(tasks, 0, [1.0])
        with pytest.raises(ValueError):
            realize_demands(tasks, 1, [-1.0])
        with pytest.raises(ValueError):
            realize_demands(tasks, 1, [1.0, 2.0])


class TestRealization:
    def test_realized_x_is_valid(self):
        tasks, power = random_instance(0, n=10)
        sch = SubintervalScheduler(tasks, 3, power)
        demands = sch.plan("der").available_times * 0.8
        real = realize_demands(tasks, 3, demands)
        assert real.feasible
        tl = Timeline(tasks)
        # x within per-variable caps and per-subinterval capacity
        assert np.all(real.x <= tl.lengths[None, :] + 1e-9)
        assert np.all(real.x.sum(axis=0) <= 3 * tl.lengths + 1e-9)
        np.testing.assert_allclose(real.x.sum(axis=1), demands, rtol=1e-9)
        assert np.all(real.shortfall < 1e-9)

    def test_realized_x_packs_with_algorithm_1(self):
        tasks, power = random_instance(1, n=8)
        sch = SubintervalScheduler(tasks, 2, power)
        demands = sch.plan("der").available_times
        real = realize_demands(tasks, 2, demands)
        assert real.feasible
        tl = Timeline(tasks)
        for sub in tl:
            alloc = {tid: float(real.x[tid, sub.index]) for tid in sub.task_ids}
            wrap_schedule(sub.start, sub.end, alloc, 2)  # must not raise

    def test_optimal_demands_are_feasible(self):
        """The convex optimum's A vector must pass the combinatorial check —
        cross-validation of two entirely different formulations."""
        tasks, power = random_instance(2, n=10)
        opt = solve_optimal(tasks, 4, power)
        assert check_demand_feasibility(tasks, 4, opt.available_times, rtol=1e-6)

    def test_infeasible_reports_shortfall_and_bottleneck(self):
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1), (0, 4, 1)])
        real = realize_demands(tasks, 1, [4.0, 4.0, 4.0])
        assert not real.feasible
        assert real.shortfall.sum() == pytest.approx(8.0)
        assert real.bottleneck_subintervals == (0,)

    def test_partial_realization_is_maximal(self):
        tasks = TaskSet.from_tuples([(0, 4, 1), (0, 4, 1)])
        real = realize_demands(tasks, 1, [4.0, 4.0])
        # capacity 4 gets fully used even though demands total 8
        assert real.x.sum() == pytest.approx(4.0)

    def test_disjoint_windows_independent(self):
        tasks = TaskSet.from_tuples([(0, 4, 1), (10, 14, 1)])
        real = realize_demands(tasks, 1, [4.0, 4.0])
        assert real.feasible
