"""Unit tests for the from-scratch Dinic max-flow solver."""

import numpy as np
import pytest

from repro.optimal import FlowResult, MaxFlowNetwork


class TestBasicGraphs:
    def test_single_edge(self):
        net = MaxFlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1).value == pytest.approx(5.0)

    def test_series_bottleneck(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2).value == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(2, 3, 3.0)
        assert net.max_flow(0, 3).value == pytest.approx(5.0)

    def test_classic_augmenting_diamond(self):
        # needs flow rerouting through the cross edge
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(0, 2, 1.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(2, 3, 1.0)
        assert net.max_flow(0, 3).value == pytest.approx(2.0)

    def test_disconnected(self):
        net = MaxFlowNetwork(4)
        net.add_edge(0, 1, 5.0)
        net.add_edge(2, 3, 5.0)
        assert net.max_flow(0, 3).value == 0.0

    def test_edge_flows_readback(self):
        net = MaxFlowNetwork(3)
        a = net.add_edge(0, 1, 4.0)
        b = net.add_edge(1, 2, 4.0)
        res = net.max_flow(0, 2)
        assert res.edge_flows[a] == pytest.approx(4.0)
        assert res.edge_flows[b] == pytest.approx(4.0)

    def test_fractional_capacities(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 0.3)
        net.add_edge(0, 1, 0.45)
        net.add_edge(1, 2, 1.0)
        assert net.max_flow(0, 2).value == pytest.approx(0.75)


class TestValidation:
    def test_rejects_bad_nodes(self):
        net = MaxFlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_rejects_source_equals_sink(self):
        net = MaxFlowNetwork(2)
        net.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            MaxFlowNetwork(1)


class TestMinCut:
    def test_reachability_after_flow(self):
        net = MaxFlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        net.max_flow(0, 2)
        reach = net.min_cut_reachable(0)
        assert reach == [True, True, False]  # cut on edge 1->2

    def test_cut_value_equals_flow(self):
        # random-ish bipartite graph: min-cut == max-flow (LP duality)
        rng = np.random.default_rng(3)
        n_left, n_right = 4, 4
        net = MaxFlowNetwork(n_left + n_right + 2)
        s, t = 0, n_left + n_right + 1
        caps = {}
        for i in range(n_left):
            c = float(rng.uniform(0.5, 2))
            caps[(s, 1 + i)] = c
            net.add_edge(s, 1 + i, c)
        for i in range(n_left):
            for j in range(n_right):
                if rng.random() < 0.6:
                    c = float(rng.uniform(0.1, 1.5))
                    caps[(1 + i, 1 + n_left + j)] = c
                    net.add_edge(1 + i, 1 + n_left + j, c)
        for j in range(n_right):
            c = float(rng.uniform(0.5, 2))
            caps[(1 + n_left + j, t)] = c
            net.add_edge(1 + n_left + j, t, c)
        res = net.max_flow(s, t)
        reach = net.min_cut_reachable(s)
        cut = sum(c for (u, v), c in caps.items() if reach[u] and not reach[v])
        assert res.value == pytest.approx(cut, rel=1e-9)
