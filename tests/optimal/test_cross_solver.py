"""Cross-validation: three independent solvers must agree."""

import numpy as np
import pytest

from repro.core import Timeline
from repro.optimal import (
    ConvexProblem,
    ProjectedGradientSolver,
    solve_optimal,
    solve_with_scipy,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance


@pytest.mark.parametrize("seed,p0,alpha", [(0, 0.0, 3.0), (1, 0.1, 3.0), (2, 0.2, 2.0), (3, 0.05, 2.5)])
def test_three_solvers_agree(seed, p0, alpha):
    tasks, _ = random_instance(seed, n=10)
    power = PolynomialPower(alpha=alpha, static=p0)
    ip = solve_optimal(tasks, 4, power)
    pg = solve_optimal(tasks, 4, power, solver="projected-gradient")
    sp = solve_optimal(tasks, 4, power, solver="SLSQP")
    assert pg.energy == pytest.approx(ip.energy, rel=1e-4)
    assert sp.energy == pytest.approx(ip.energy, rel=1e-4)


def test_trust_constr_agrees():
    tasks, power = random_instance(7, n=6)
    ip = solve_optimal(tasks, 2, power)
    tc = solve_optimal(tasks, 2, power, solver="trust-constr", tol=1e-10)
    assert tc.energy == pytest.approx(ip.energy, rel=1e-3)


def test_unknown_scipy_method_rejected():
    tasks, power = random_instance(7, n=4)
    prob = ConvexProblem(Timeline(tasks), 2, power)
    with pytest.raises(ValueError, match="unsupported"):
        solve_with_scipy(prob, method="NELDER")


def test_pg_solver_name_and_feasibility():
    tasks, power = random_instance(5, n=8)
    sol = solve_optimal(tasks, 3, power, solver="projected-gradient")
    assert sol.solver == "projected-gradient"
    sol.problem.check_feasible(sol.x)


def test_scipy_solution_feasible():
    tasks, power = random_instance(6, n=8)
    sol = solve_optimal(tasks, 3, power, solver="SLSQP")
    sol.problem.check_feasible(sol.x)


def test_available_times_agree_where_strongly_convex():
    # with p0 > 0 the optimal A_i is unique, so solvers agree on it too
    tasks, _ = random_instance(8, n=8)
    power = PolynomialPower(alpha=3.0, static=0.2)
    ip = solve_optimal(tasks, 4, power)
    pg = solve_optimal(tasks, 4, power, solver="projected-gradient")
    np.testing.assert_allclose(ip.available_times, pg.available_times, rtol=5e-3)
