"""Tests for materializing optimal solutions as concrete schedules."""

import pytest

from repro.optimal import optimal_schedule, solve_optimal
from repro.sim import assert_valid, execute_schedule
from tests.conftest import random_instance


@pytest.mark.parametrize("seed", range(4))
def test_optimal_schedule_is_valid(seed):
    tasks, power = random_instance(seed, n=10)
    sol = solve_optimal(tasks, 4, power)
    sched = optimal_schedule(sol)
    assert_valid(sched, tol=1e-5)


@pytest.mark.parametrize("seed", range(4))
def test_optimal_schedule_energy_matches_objective(seed):
    tasks, power = random_instance(seed, n=10)
    sol = solve_optimal(tasks, 4, power)
    sched = optimal_schedule(sol)
    assert sched.total_energy() == pytest.approx(sol.energy, rel=1e-5)


def test_optimal_schedule_replay(motivational):
    tasks, power = motivational
    sol = solve_optimal(tasks, 2, power)
    sched = optimal_schedule(sol)
    report = execute_schedule(sched)
    assert report.all_deadlines_met
    assert report.total_energy == pytest.approx(sol.energy, rel=1e-6)


def test_optimal_schedule_respects_core_count(motivational):
    tasks, power = motivational
    sol = solve_optimal(tasks, 2, power)
    sched = optimal_schedule(sol)
    assert sched.n_cores == 2
    assert all(seg.core < 2 for seg in sched)
