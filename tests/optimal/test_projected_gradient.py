"""Unit tests for the projected-gradient solver and its projection."""

import numpy as np
import pytest

from repro.core import Timeline
from repro.optimal import (
    ConvexProblem,
    PGConfig,
    ProjectedGradientSolver,
    project_capped_box,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance


class TestProjection:
    def test_inside_point_unchanged(self):
        y = np.array([0.5, 1.0])
        u = np.array([2.0, 2.0])
        np.testing.assert_allclose(project_capped_box(y, u, 4.0), y)

    def test_box_clipping(self):
        y = np.array([-1.0, 5.0])
        u = np.array([2.0, 2.0])
        np.testing.assert_allclose(project_capped_box(y, u, 10.0), [0.0, 2.0])

    def test_cap_enforced(self):
        y = np.array([3.0, 3.0])
        u = np.array([5.0, 5.0])
        out = project_capped_box(y, u, 4.0)
        assert out.sum() == pytest.approx(4.0, abs=1e-9)
        np.testing.assert_allclose(out, [2.0, 2.0])  # symmetric shift

    def test_cap_with_box_interaction(self):
        y = np.array([10.0, 0.5])
        u = np.array([2.0, 2.0])
        out = project_capped_box(y, u, 2.0)
        assert out.sum() <= 2.0 + 1e-9
        assert np.all(out <= u + 1e-12)
        assert np.all(out >= -1e-12)

    def test_projection_is_idempotent(self, rng):
        for _ in range(20):
            y = rng.normal(0, 3, 6)
            u = rng.uniform(0.5, 3, 6)
            cap = rng.uniform(0.5, 6)
            p1 = project_capped_box(y, u, cap)
            p2 = project_capped_box(p1, u, cap)
            np.testing.assert_allclose(p1, p2, atol=1e-8)

    def test_projection_minimizes_distance(self, rng):
        # compare against brute-force grid search on a 2-D instance
        u = np.array([1.0, 1.0])
        cap = 1.2
        y = np.array([1.5, 0.9])
        proj = project_capped_box(y, u, cap)
        grid = np.linspace(0, 1, 101)
        best = None
        for a in grid:
            for b in grid:
                if a + b <= cap:
                    d = (a - y[0]) ** 2 + (b - y[1]) ** 2
                    if best is None or d < best[0]:
                        best = (d, a, b)
        assert proj[0] == pytest.approx(best[1], abs=0.02)
        assert proj[1] == pytest.approx(best[2], abs=0.02)


class TestSolver:
    def test_converges_on_small_instance(self):
        tasks, power = random_instance(0, n=6)
        prob = ConvexProblem(Timeline(tasks), 2, power)
        sol = ProjectedGradientSolver(prob).solve()
        prob.check_feasible(sol.x)
        assert sol.iterations > 0

    def test_monotone_objective_wrt_start(self):
        tasks, power = random_instance(1, n=6)
        prob = ConvexProblem(Timeline(tasks), 2, power)
        start = prob.feasible_start(0.5)
        sol = ProjectedGradientSolver(prob).solve(x0=start)
        assert sol.energy <= prob.objective(start) + 1e-9

    def test_config_iteration_cap(self):
        tasks, power = random_instance(2, n=6)
        prob = ConvexProblem(Timeline(tasks), 2, power)
        sol = ProjectedGradientSolver(prob, PGConfig(max_iter=5)).solve()
        assert sol.iterations <= 5
