"""Unit tests for KKT certificates and activity reports."""

import numpy as np
import pytest

from repro.core import Timeline
from repro.optimal import (
    ConvexProblem,
    active_constraints,
    projection_residual,
    solve_optimal,
    verify_optimality,
)
from repro.power import PolynomialPower
from tests.conftest import random_instance


class TestProjectionResidual:
    def test_zero_at_optimum(self):
        tasks, power = random_instance(0, n=8)
        sol = solve_optimal(tasks, 3, power)
        g = sol.problem.gradient(sol.x)
        scale = float(np.max(np.abs(g)))
        assert projection_residual(sol.problem, sol.x) < 1e-3 * scale

    def test_large_away_from_optimum(self):
        tasks, power = random_instance(0, n=8)
        sol = solve_optimal(tasks, 3, power)
        start = sol.problem.feasible_start(0.5)
        assert projection_residual(sol.problem, start) > projection_residual(
            sol.problem, sol.x
        )

    def test_rejects_bad_step(self):
        tasks, power = random_instance(0, n=4)
        p = ConvexProblem(Timeline(tasks), 2, power)
        with pytest.raises(ValueError):
            projection_residual(p, p.feasible_start(), step=0.0)


class TestVerifyOptimality:
    def test_accepts_optimum(self):
        tasks, power = random_instance(1, n=8)
        sol = solve_optimal(tasks, 3, power)
        assert verify_optimality(sol.problem, sol.x)

    def test_rejects_suboptimal_point(self):
        tasks, power = random_instance(1, n=8)
        p = ConvexProblem(Timeline(tasks), 3, power)
        assert not verify_optimality(p, p.feasible_start(0.4), tol=1e-6)

    def test_rejects_infeasible(self):
        tasks, power = random_instance(1, n=6)
        p = ConvexProblem(Timeline(tasks), 3, power)
        x = p.feasible_start()
        x[0] = -5.0
        with pytest.raises(AssertionError):
            verify_optimality(p, x)


class TestActivityReport:
    def test_saturation_appears_when_contended(self):
        # p0 = 0: optimum stretches everything, saturating heavy subintervals
        tasks, _ = random_instance(2, n=16)
        power = PolynomialPower(alpha=3.0, static=0.0)
        sol = solve_optimal(tasks, 2, power)
        rep = active_constraints(sol.problem, sol.x, rtol=1e-4)
        tl = sol.problem.timeline
        heavy = {s.index for s in tl.heavy(2)}
        saturated = set(np.flatnonzero(rep.saturated_subintervals))
        # every saturated subinterval should at least be contended
        assert saturated, "expected some saturated subintervals at p0=0"
        assert rep.n_saturated == len(saturated)

    def test_no_saturation_when_idle(self):
        tasks, power = random_instance(3, n=3)
        sol = solve_optimal(tasks, 8, power)  # more cores than tasks
        rep = active_constraints(sol.problem, sol.x)
        assert rep.n_saturated == 0

    def test_masks_have_right_shapes(self):
        tasks, power = random_instance(4, n=6)
        sol = solve_optimal(tasks, 2, power)
        rep = active_constraints(sol.problem, sol.x)
        assert rep.saturated_subintervals.shape == (sol.problem.n_subs,)
        assert rep.at_upper.shape == (sol.problem.k,)
        assert rep.at_zero.shape == (sol.problem.k,)
