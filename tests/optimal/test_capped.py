"""Tests for the frequency-capped exact optimum."""

import numpy as np
import pytest

from repro.core import TaskSet
from repro.optimal import solve_optimal, solve_optimal_capped
from repro.power import PolynomialPower
from tests.conftest import random_instance


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.05)


class TestCapRespected:
    @pytest.mark.parametrize("f_max", [1.0, 1.5, 3.0])
    def test_all_frequencies_within_cap(self, power, f_max):
        tasks, _ = random_instance(0, n=10)
        sol = solve_optimal_capped(tasks, 4, power, f_max=f_max)
        assert np.all(sol.frequencies <= f_max * (1 + 1e-6))
        sol.problem.check_feasible(sol.x)

    def test_loose_cap_matches_uncapped(self, power):
        tasks, _ = random_instance(1, n=10)
        uncapped = solve_optimal(tasks, 4, power)
        capped = solve_optimal_capped(tasks, 4, power, f_max=1e6)
        assert capped.energy == pytest.approx(uncapped.energy, rel=1e-5)

    def test_capped_energy_at_least_uncapped(self, power):
        # the paper workload draws intensities up to 1.0, so a cap must sit
        # strictly above that to leave slack for every task
        tasks, _ = random_instance(2, n=12)
        uncapped = solve_optimal(tasks, 4, power)
        capped = solve_optimal_capped(tasks, 4, power, f_max=1.25)
        assert capped.energy >= uncapped.energy * (1 - 1e-8)

    def test_tighter_cap_never_cheaper(self, power):
        tasks, _ = random_instance(3, n=10)
        loose = solve_optimal_capped(tasks, 4, power, f_max=2.0)
        tight = solve_optimal_capped(tasks, 4, power, f_max=1.05)
        assert tight.energy >= loose.energy * (1 - 1e-8)


class TestCrossValidation:
    def test_slsqp_agrees(self, power):
        tasks, _ = random_instance(4, n=8)
        ip = solve_optimal_capped(tasks, 3, power, f_max=1.2)
        sp = solve_optimal_capped(tasks, 3, power, f_max=1.2, solver="SLSQP")
        assert sp.energy == pytest.approx(ip.energy, rel=1e-4)

    def test_binding_cap_example(self):
        """One tight task alone on one core: the cap binds exactly."""
        power = PolynomialPower(alpha=3.0, static=0.0)
        tasks = TaskSet.from_tuples([(0, 10, 8)])  # intensity 0.8
        # uncapped optimum runs at 0.8 over the full window; cap below that
        # is infeasible; cap above is the uncapped solution
        sol = solve_optimal_capped(tasks, 1, power, f_max=1.0)
        assert sol.frequencies[0] == pytest.approx(0.8, rel=1e-5)

    def test_cap_forces_spread_across_cores(self):
        """Two simultaneous tasks, f_max equal to their intensity: each must
        own a core for its entire window (A = window exactly is degenerate;
        use a slightly loose cap to keep an interior)."""
        power = PolynomialPower(alpha=3.0, static=0.0)
        tasks = TaskSet.from_tuples([(0, 4, 4), (0, 4, 4)])
        sol = solve_optimal_capped(tasks, 2, power, f_max=1.1)
        assert np.all(sol.frequencies <= 1.1 + 1e-6)
        assert np.all(sol.available_times >= 4.0 / 1.1 - 1e-4)


class TestInfeasibility:
    def test_contended_cap_rejected(self, power):
        # three full-intensity tasks sharing one core at f_max = 1: impossible
        tasks = TaskSet.from_tuples([(0, 4, 4), (0, 4, 4), (0, 4, 4)])
        with pytest.raises(ValueError, match="infeasible|no slack"):
            solve_optimal_capped(tasks, 1, power, f_max=1.0)

    def test_isolated_impossible_task_rejected(self, power):
        tasks = TaskSet.from_tuples([(0, 2, 4)])  # needs f = 2
        with pytest.raises(ValueError):
            solve_optimal_capped(tasks, 4, power, f_max=1.0)

    def test_bad_cap_value(self, power):
        tasks = TaskSet.from_tuples([(0, 4, 1)])
        with pytest.raises(ValueError, match="f_max"):
            solve_optimal_capped(tasks, 1, power, f_max=0.0)

    def test_pg_solver_refused(self, power):
        tasks = TaskSet.from_tuples([(0, 4, 1)])
        with pytest.raises(ValueError, match="projected-gradient"):
            solve_optimal_capped(tasks, 1, power, f_max=1.0, solver="projected-gradient")


class TestAdmissionConsistency:
    def test_capped_solver_and_flow_test_agree(self, power):
        """solve_optimal_capped succeeds exactly when the admission test
        passes (modulo the 1% phase-1 margin)."""
        from repro.core import AdmissionController

        rng = np.random.default_rng(7)
        for _ in range(8):
            n = int(rng.integers(2, 7))
            R = rng.uniform(0, 10, n)
            C = rng.uniform(1, 5, n)
            W = C * rng.uniform(1.1, 3.0, n)
            tasks = TaskSet.from_arrays(R, R + W, C)
            ctl = AdmissionController(2, power, f_max=1.0)
            flow_ok = ctl.is_schedulable(tasks)
            try:
                solve_optimal_capped(tasks, 2, power, f_max=1.0)
                ip_ok = True
            except ValueError:
                ip_ok = False
            if flow_ok != ip_ok:
                # only allowed discrepancy: margin-tight instances
                margin = ctl.is_schedulable(tasks) and not ip_ok
                assert margin, "solvers disagree beyond the phase-1 margin"
