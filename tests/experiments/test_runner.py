"""Unit tests for the experiment engine."""

import numpy as np
import pytest

from repro.experiments import PointSpec, evaluate_taskset, run_point, run_replication, sweep
from repro.experiments.runner import SweepResult, _spawn_seeds
from repro.power import PolynomialPower
from tests.conftest import random_instance


class TestPointSpec:
    def test_power(self):
        spec = PointSpec(alpha=2.5, p0=0.1)
        p = spec.power()
        assert p.alpha == 2.5 and p.static == 0.1

    def test_draw_respects_n(self):
        spec = PointSpec(n_tasks=7)
        ts = spec.draw(np.random.default_rng(0))
        assert len(ts) == 7

    def test_draw_respects_intensity_range(self):
        spec = PointSpec(n_tasks=100, intensity_low=0.8)
        ts = spec.draw(np.random.default_rng(0))
        assert np.all(ts.intensities >= 0.8 - 1e-9)


class TestEvaluate:
    def test_series_present_and_sane(self):
        tasks, power = random_instance(0, n=10)
        sample = evaluate_taskset(tasks, 4, power)
        assert set(sample.values) == {"Idl", "I1", "F1", "I2", "F2"}
        # heuristics are at least optimal (>= 1 up to solver tolerance)
        for k in ("I1", "F1", "I2", "F2"):
            assert sample.values[k] >= 1.0 - 1e-6

    def test_ordering_relations(self):
        tasks, power = random_instance(1, n=14)
        s = evaluate_taskset(tasks, 4, power)
        assert s.values["F1"] <= s.values["I1"] + 1e-9
        assert s.values["F2"] <= s.values["I2"] + 1e-9


class TestReplication:
    def test_deterministic(self):
        spec = PointSpec(n_tasks=8)
        a = run_replication(spec, 42)
        b = run_replication(spec, 42)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        spec = PointSpec(n_tasks=8)
        a = run_replication(spec, 1)
        b = run_replication(spec, 2)
        assert a.values != b.values


class TestRunPoint:
    def test_aggregation(self):
        spec = PointSpec(n_tasks=8, p0=0.1)
        agg = run_point(spec, reps=3, seed=0)
        assert agg.n == 3
        assert agg.mean["F2"] >= 1.0 - 1e-6

    def test_seed_spawning_deterministic(self):
        assert _spawn_seeds(7, 5) == _spawn_seeds(7, 5)
        assert _spawn_seeds(7, 5) != _spawn_seeds(8, 5)

    def test_rejects_zero_reps(self):
        with pytest.raises(ValueError):
            run_point(PointSpec(), reps=0)


class TestSweep:
    def test_sweep_result_structure(self):
        specs = [(0.0, PointSpec(n_tasks=6, p0=0.0)), (0.2, PointSpec(n_tasks=6, p0=0.2))]
        res = sweep("test", "p0", specs, reps=2, seed=0)
        assert res.x_values == (0.0, 0.2)
        assert set(res.series) == {"Idl", "I1", "F1", "I2", "F2"}
        assert len(res.series["F2"]) == 2

    def test_format_contains_rows(self):
        specs = [(1, PointSpec(n_tasks=6))]
        res = sweep("My Figure", "x", specs, reps=2)
        out = res.format()
        assert "My Figure" in out
        assert "F2" in out

    def test_csv_and_svg(self):
        specs = [(1, PointSpec(n_tasks=6)), (2, PointSpec(n_tasks=6))]
        res = sweep("fig", "x", specs, reps=2)
        csv = res.to_csv()
        assert csv.splitlines()[0].startswith("x,")
        svg = res.to_svg()
        assert svg.startswith("<svg")
