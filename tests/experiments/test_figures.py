"""Smoke + shape tests for every figure/table module (tiny rep counts).

These confirm each experiment runs end-to-end and exhibits the *qualitative*
shape the paper reports; the benchmarks regenerate them at full scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    core_selection_exp,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
)

REPS = 3
SEED = 123


class TestFig6:
    def test_runs_and_shape(self):
        res = fig6.run(reps=REPS, seed=SEED)
        assert res.x_values == fig6.P0_VALUES
        f2 = res.series["F2"]
        f1 = res.series["F1"]
        # DER-based final stays below even-based final everywhere (paper)
        assert all(a <= b + 0.05 for a, b in zip(f2, f1))
        # F2 stays near-optimal
        assert max(f2) < 1.35


class TestFig7:
    def test_runs_and_shape(self):
        res = fig7.run(reps=REPS, seed=SEED)
        assert res.x_values == fig7.ALPHA_VALUES
        f2 = res.series["F2"]
        i1 = res.series["I1"]
        assert all(a <= b + 1e-9 for a, b in zip(f2, i1))


class TestFig8:
    def test_runs_and_shape(self):
        res = fig8.run(reps=REPS, seed=SEED)
        f2 = np.array(res.series["F2"])
        # more cores -> F2 approaches optimal; m=12 must beat m=2 clearly
        assert f2[-1] < f2[0] + 1e-9
        assert f2[-1] < 1.1


class TestFig9:
    def test_runs_and_shape(self):
        res = fig9.run(reps=REPS, seed=SEED)
        assert len(res.series["F2"]) == len(fig9.INTENSITY_LOWS)
        assert max(res.series["F2"]) < 1.5


class TestFig10:
    def test_runs_and_shape(self):
        res = fig10.run(reps=REPS, seed=SEED)
        f2 = res.series["F2"]
        # n=5 on 4 cores: nearly uncontended, so near-ideal
        assert f2[0] < 1.1


class TestTable2:
    def test_reduced_grid(self):
        res = table2.run(
            reps=2, seed=SEED, alphas=(2.0, 3.0), p0s=(0.0, 0.2)
        )
        assert res.nec_f1.shape == (2, 2)
        # F2 never worse than F1 on average
        assert np.all(res.nec_f2 <= res.nec_f1 + 0.05)
        out = res.format()
        assert "NEC of F1" in out and "NEC of F2" in out
        csv = res.to_csv()
        assert csv.splitlines()[0] == "alpha,p0,nec_f1,nec_f2"


class TestFig11:
    def test_runs_and_reports_misses(self):
        res = fig11.run(reps=2, seed=SEED)
        assert res.x_values == fig11.TASK_COUNTS
        extra = res.extra_series
        assert "miss_F2" in extra
        # F2's miss probability never exceeds I1's (paper's qualitative claim)
        assert all(
            a <= b + 1e-9 for a, b in zip(extra["miss_F2"], extra["miss_I1"])
        )


class TestCoreSelection:
    def test_runs_and_saves_energy(self):
        res = core_selection_exp.run(reps=2, seed=SEED, m_max=6, p0_values=(0.0, 0.4))
        assert np.all(res.savings >= -1e-9)
        # selection matters more at high static power
        assert res.savings[-1] >= res.savings[0] - 1e-9
        assert "core-count selection" in res.format()
