"""Tests for the ablation experiments (small rep counts)."""

import numpy as np
import pytest

from repro.core import SubintervalScheduler, Timeline, allocate_proportional
from repro.experiments import (
    ablation_der,
    ablation_online,
    ablation_switching,
    ablation_two_level,
)
from tests.conftest import random_instance


class TestAllocateProportional:
    def test_matches_even_with_equal_weights(self, six_tasks):
        tl = Timeline(six_tasks)
        sub = tl[tl.locate(8.0)]
        weights = {tid: 1.0 for tid in sub.task_ids}
        alloc = allocate_proportional(sub, 4, weights)
        for v in alloc.values():
            assert v == pytest.approx(8 / 5)

    def test_rejects_negative_weights(self, six_tasks):
        tl = Timeline(six_tasks)
        sub = tl[tl.locate(8.0)]
        with pytest.raises(ValueError, match="negative weight"):
            allocate_proportional(sub, 4, {sub.task_ids[0]: -1.0})

    def test_caps_at_length(self, six_tasks):
        tl = Timeline(six_tasks)
        sub = tl[tl.locate(8.0)]
        weights = {tid: 0.0 for tid in sub.task_ids}
        weights[sub.task_ids[0]] = 100.0
        alloc = allocate_proportional(sub, 4, weights)
        assert alloc[sub.task_ids[0]] == pytest.approx(sub.length)


class TestFinalFromPlan:
    def test_reproduces_f2(self):
        tasks, power = random_instance(0, n=12)
        sch = SubintervalScheduler(tasks, 4, power)
        res = sch.final_from_plan(sch.plan("der"), kind="F2")
        assert res.energy == pytest.approx(sch.final("der").energy)

    def test_rejects_foreign_plan(self):
        tasks_a, power = random_instance(0, n=8)
        tasks_b, _ = random_instance(1, n=8)
        plan_b = SubintervalScheduler(tasks_b, 4, power).plan("der")
        sch_a = SubintervalScheduler(tasks_a, 4, power)
        with pytest.raises(ValueError, match="different instance"):
            sch_a.final_from_plan(plan_b)


class TestDerAblation:
    def test_runs_and_orders(self):
        res = ablation_der.run(reps=3, seed=1)
        assert set(res.mean_nec) == set(ablation_der.POLICIES)
        # every policy is at least optimal
        assert all(v >= 1.0 - 1e-6 for v in res.mean_nec.values())
        # DER beats even allocation (the paper's core claim)
        assert res.mean_nec["der"] <= res.mean_nec["even"]
        assert "ablation" in res.format()
        assert res.to_csv().startswith("policy,")


class TestSwitchingAblation:
    def test_runs_and_ranking(self):
        res = ablation_switching.run(reps=3, seed=1)
        assert res.ranking_preserved()
        assert res.mean_switches["F2"] > 0
        # adjusted energies grow with switch cost
        for m in res.adjusted:
            diffs = np.diff(res.adjusted[m])
            assert np.all(diffs >= -1e-9)
        assert "switching" in res.format()


class TestTwoLevelAblation:
    def test_runs(self):
        res = ablation_two_level.run(reps=2, task_counts=(5, 15))
        assert res.round_up.shape == (2,)
        assert np.all(res.round_up > 0)
        assert np.all(res.two_level > 0)
        assert "XScale" in res.format()
        # the known finding: round-up wins on the XScale table
        assert np.all(res.round_up <= res.two_level * (1 + 1e-9))


class TestOnlineAblation:
    def test_runs_and_premium_nonnegative(self):
        res = ablation_online.run(reps=2, task_counts=(10, 20))
        # online never beats the optimal-normalized offline by construction
        # of NEC >= 1; premium can dip slightly below 1 on ties
        assert np.all(res.online_nec >= 1.0 - 1e-6)
        assert np.all(res.offline_nec >= 1.0 - 1e-6)
        assert np.all(res.mean_replans > 0)
        assert "Online" in res.format()
