"""Unit tests for the discrete/practical (XScale) evaluation."""

import numpy as np
import pytest

from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.experiments import discrete_evaluation, evaluate_practical
from repro.power import DiscreteFrequencySet, PolynomialPower, xscale_frequency_set
from repro.workloads import xscale_workload


@pytest.fixture
def fset():
    return xscale_frequency_set()


class TestDiscreteEvaluation:
    def _schedule(self, freq: float):
        ts = TaskSet.from_tuples([(0.0, 10.0, freq * 4)])
        segs = [Segment(0, 0, 0.0, 4.0, freq)]
        return Schedule(ts, 1, PolynomialPower(3.0, 0.0), segs)

    def test_quantizes_up_and_uses_table_power(self, fset):
        # planned 500 MHz -> runs at 600 MHz (400 mW)
        sched = self._schedule(500.0)
        ev = discrete_evaluation(sched, fset)
        work = 500.0 * 4
        assert ev.energy == pytest.approx(400.0 * work / 600.0)
        assert not ev.missed

    def test_exact_operating_point_unchanged(self, fset):
        sched = self._schedule(800.0)
        ev = discrete_evaluation(sched, fset)
        assert ev.energy == pytest.approx(900.0 * 4.0)

    def test_above_fmax_is_miss(self, fset):
        sched = self._schedule(1200.0)
        ev = discrete_evaluation(sched, fset)
        assert ev.missed
        assert ev.missed_tasks == (0,)
        # energy still accounted at f_max
        assert np.isfinite(ev.energy)

    def test_empty_schedule(self, fset):
        ts = TaskSet.from_tuples([(0.0, 10.0, 1.0)])
        sched = Schedule(ts, 1, PolynomialPower(3.0, 0.0), [])
        ev = discrete_evaluation(sched, fset)
        assert ev.energy == 0.0 and not ev.missed


class TestEvaluatePractical:
    def test_sample_structure(self, fset):
        rng = np.random.default_rng(3)
        tasks = xscale_workload(rng, n_tasks=10)
        sample = evaluate_practical(tasks, 4, fset)
        assert set(sample.values) == {"Idl", "I1", "F1", "I2", "F2"}
        assert set(sample.extra) == {
            "miss_Idl",
            "miss_I1",
            "miss_F1",
            "miss_I2",
            "miss_F2",
        }
        for v in sample.values.values():
            assert v > 0

    def test_requires_continuous_fit(self):
        rng = np.random.default_rng(3)
        tasks = xscale_workload(rng, n_tasks=5)
        bare = DiscreteFrequencySet(
            np.array([100.0, 400.0]), np.array([50.0, 200.0])
        )
        with pytest.raises(ValueError, match="continuous fit"):
            evaluate_practical(tasks, 4, bare)

    def test_light_load_no_misses(self, fset):
        rng = np.random.default_rng(0)
        tasks = xscale_workload(rng, n_tasks=4)  # fewer tasks than cores
        sample = evaluate_practical(tasks, 4, fset)
        assert all(v == 0.0 for k, v in sample.extra.items())

    def test_f2_beats_f1_under_contention(self, fset):
        rng = np.random.default_rng(12)
        tasks = xscale_workload(rng, n_tasks=25)
        sample = evaluate_practical(tasks, 4, fset)
        assert sample.values["F2"] <= sample.values["F1"] + 1e-9
