"""Tests for the lightweight-claim scaling experiment."""

import numpy as np

from repro.experiments import scaling


def test_scaling_runs_and_heuristic_wins():
    res = scaling.run(reps=2, task_counts=(10, 20))
    assert np.all(res.heuristic_s > 0)
    assert np.all(res.optimal_s > 0)
    # the lightweight claim: at n=20 the heuristic is at least 3x faster
    assert res.speedup[-1] > 3.0
    # and near-optimal in quality
    assert np.all(res.heuristic_nec >= 1.0 - 1e-6)
    assert np.all(res.heuristic_nec < 1.5)


def test_format_and_csv():
    res = scaling.run(reps=1, task_counts=(10,))
    assert "Lightweight" in res.format()
    assert res.to_csv().startswith("n,")
