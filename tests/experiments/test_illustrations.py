"""Tests for the Figs. 1–5 illustration generators."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments import illustrations


@pytest.mark.parametrize(
    "fn",
    [
        illustrations.fig1_svg,
        illustrations.fig2a_svg,
        illustrations.fig2b_svg,
        illustrations.fig3_svg,
        illustrations.fig4_svg,
        illustrations.fig5_svg,
    ],
)
def test_each_figure_is_valid_svg(fn):
    svg = fn()
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_fig2b_reports_paper_optimum():
    assert "5.0438" in illustrations.fig2b_svg()  # 155/32 + 0.2


def test_fig4_fig5_report_paper_energies():
    assert "33.0642" in illustrations.fig4_svg()
    assert "31.8362" in illustrations.fig5_svg()


def test_generate_all(tmp_path):
    paths = illustrations.generate_all(tmp_path)
    assert len(paths) == 6
    for p in paths:
        assert p.exists()
        ET.fromstring(p.read_text())
