"""Tests for sweep persistence and regression comparison."""

import pytest

from repro.experiments import (
    PointSpec,
    compare_sweeps,
    load_sweep,
    save_sweep,
    sweep,
    sweep_from_json,
    sweep_to_json,
)


@pytest.fixture(scope="module")
def small_sweep():
    specs = [(0.0, PointSpec(n_tasks=6, p0=0.0)), (0.2, PointSpec(n_tasks=6, p0=0.2))]
    return sweep("test sweep", "p0", specs, reps=2, seed=0)


class TestRoundtrip:
    def test_json_roundtrip(self, small_sweep):
        out = sweep_from_json(sweep_to_json(small_sweep))
        assert out.name == small_sweep.name
        assert out.x_values == small_sweep.x_values
        assert out.series == small_sweep.series

    def test_statistics_preserved(self, small_sweep):
        out = sweep_from_json(sweep_to_json(small_sweep))
        for a, b in zip(out.aggregates, small_sweep.aggregates):
            assert a.n == b.n
            assert a.std == b.std
            assert a.minimum == b.minimum

    def test_file_roundtrip(self, small_sweep, tmp_path):
        p = tmp_path / "sweep.json"
        save_sweep(small_sweep, p)
        out = load_sweep(p)
        assert out.series == small_sweep.series
        # renderers still work on the reloaded object
        assert "test sweep" in out.format()
        assert out.to_svg().startswith("<svg")

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-sweep"):
            sweep_from_json('{"format": "x"}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            sweep_from_json('{"format": "repro-sweep", "version": 2}')


class TestCompare:
    def test_identical_sweeps_zero_deviation(self, small_sweep):
        devs = compare_sweeps(small_sweep, small_sweep)
        assert max(devs.values()) == 0.0

    def test_same_seed_reruns_match(self, small_sweep):
        specs = [(0.0, PointSpec(n_tasks=6, p0=0.0)), (0.2, PointSpec(n_tasks=6, p0=0.2))]
        rerun = sweep("test sweep", "p0", specs, reps=2, seed=0)
        devs = compare_sweeps(small_sweep, rerun)
        assert max(devs.values()) < 1e-12

    def test_structural_mismatch_rejected(self, small_sweep):
        specs = [(0.1, PointSpec(n_tasks=6))]
        other = sweep("other", "p0", specs, reps=2)
        with pytest.raises(ValueError, match="different x values"):
            compare_sweeps(small_sweep, other)
