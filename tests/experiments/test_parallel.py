"""Tests for process-parallel replication (determinism across modes)."""

import pytest

from repro.experiments import PointSpec, run_point
from repro.experiments.parallel import default_workers, parallel_replications
from repro.experiments.runner import _spawn_seeds


def test_default_workers_positive():
    assert default_workers() >= 1


def test_parallel_matches_serial():
    spec = PointSpec(n_tasks=8, p0=0.1)
    seeds = _spawn_seeds(0, 4)
    serial = parallel_replications(spec, seeds, workers=1)
    parallel = parallel_replications(spec, seeds, workers=2)
    for a, b in zip(serial, parallel):
        assert a.values == pytest.approx(b.values)


def test_run_point_parallel_equals_serial():
    spec = PointSpec(n_tasks=8, p0=0.1)
    a = run_point(spec, reps=4, seed=3, workers=1)
    b = run_point(spec, reps=4, seed=3, workers=2)
    for k in a.mean:
        assert a.mean[k] == pytest.approx(b.mean[k])


def test_single_seed_short_circuits():
    spec = PointSpec(n_tasks=6)
    out = parallel_replications(spec, [11], workers=8)
    assert len(out) == 1


def test_chunk_size_four_chunks_per_worker():
    from repro.experiments.parallel import chunk_size

    assert chunk_size(100, 4) == 6  # 100 // 16
    assert chunk_size(64, 4) == 4
    assert chunk_size(16, 4) == 1


def test_chunk_size_small_batches_degrade_to_one():
    from repro.experiments.parallel import chunk_size

    # len(seeds) < workers * 4: per-item submission keeps all workers busy
    assert chunk_size(3, 4) == 1
    assert chunk_size(0, 2) == 1
    assert chunk_size(7, 2) == 1


def test_chunk_size_rejects_bad_workers():
    from repro.experiments.parallel import chunk_size

    with pytest.raises(ValueError, match="workers"):
        chunk_size(10, 0)


def test_workers_one_never_spawns_a_pool(monkeypatch):
    from repro.experiments import parallel as par

    def _boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("workers=1 must not create a process pool")

    monkeypatch.setattr(par, "ProcessPoolExecutor", _boom)
    spec = PointSpec(n_tasks=6, p0=0.1)
    seeds = _spawn_seeds(5, 3)
    out = par.parallel_replications(spec, seeds, workers=1)
    assert len(out) == 3


def test_parallel_results_come_back_in_seed_order():
    spec = PointSpec(n_tasks=8, p0=0.1)
    seeds = _spawn_seeds(7, 6)
    serial = [parallel_replications(spec, [s], workers=1)[0] for s in seeds]
    parallel = parallel_replications(spec, seeds, workers=3)
    # positionally identical: result i belongs to seed i, not completion order
    for a, b in zip(serial, parallel):
        assert a.values == pytest.approx(b.values)
