"""Tests for process-parallel replication (determinism across modes)."""

import pytest

from repro.experiments import PointSpec, run_point
from repro.experiments.parallel import default_workers, parallel_replications
from repro.experiments.runner import _spawn_seeds


def test_default_workers_positive():
    assert default_workers() >= 1


def test_parallel_matches_serial():
    spec = PointSpec(n_tasks=8, p0=0.1)
    seeds = _spawn_seeds(0, 4)
    serial = parallel_replications(spec, seeds, workers=1)
    parallel = parallel_replications(spec, seeds, workers=2)
    for a, b in zip(serial, parallel):
        assert a.values == pytest.approx(b.values)


def test_run_point_parallel_equals_serial():
    spec = PointSpec(n_tasks=8, p0=0.1)
    a = run_point(spec, reps=4, seed=3, workers=1)
    b = run_point(spec, reps=4, seed=3, workers=2)
    for k in a.mean:
        assert a.mean[k] == pytest.approx(b.mean[k])


def test_single_seed_short_circuits():
    spec = PointSpec(n_tasks=6)
    out = parallel_replications(spec, [11], workers=8)
    assert len(out) == 1
