"""Unit tests for simulated cores."""

import pytest

from repro.power import PolynomialPower
from repro.sim import CoreBusyError, SimCore, SimProcessor


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.1)


class TestSimCore:
    def test_energy_integration(self, power):
        core = SimCore(index=0, power=power)
        core.start(0.0, task_id=7, frequency=2.0)
        tid, work = core.stop(3.0)
        assert tid == 7
        assert work == pytest.approx(6.0)
        assert core.energy == pytest.approx((8 + 0.1) * 3)
        assert core.active_time == pytest.approx(3.0)

    def test_sleep_consumes_nothing(self, power):
        core = SimCore(index=0, power=power)
        core.start(0.0, 1, 1.0)
        core.stop(1.0)
        core.start(5.0, 2, 1.0)  # idle from 1 to 5
        core.stop(6.0)
        assert core.energy == pytest.approx((1 + 0.1) * 2)

    def test_double_start_raises(self, power):
        core = SimCore(index=0, power=power)
        core.start(0.0, 1, 1.0)
        with pytest.raises(CoreBusyError):
            core.start(1.0, 2, 1.0)

    def test_stop_when_sleeping_raises(self, power):
        with pytest.raises(RuntimeError):
            SimCore(index=0, power=power).stop(1.0)

    def test_stop_before_start_raises(self, power):
        core = SimCore(index=0, power=power)
        core.start(5.0, 1, 1.0)
        with pytest.raises(ValueError):
            core.stop(4.0)

    def test_nonpositive_frequency_rejected(self, power):
        core = SimCore(index=0, power=power)
        with pytest.raises(ValueError):
            core.start(0.0, 1, 0.0)


class TestSimProcessor:
    def test_construction(self, power):
        proc = SimProcessor(4, power)
        assert len(proc) == 4
        assert proc[2].index == 2

    def test_rejects_bad_m(self, power):
        with pytest.raises(ValueError):
            SimProcessor(0, power)

    def test_totals(self, power):
        proc = SimProcessor(2, power)
        proc[0].start(0.0, 1, 1.0)
        proc[1].start(0.0, 2, 2.0)
        proc.stop_all(2.0)
        assert proc.total_active_time == pytest.approx(4.0)
        assert proc.total_energy == pytest.approx((1.1 + 8.1) * 2)

    def test_idle_and_executing_queries(self, power):
        proc = SimProcessor(2, power)
        proc[0].start(0.0, 9, 1.0)
        assert [c.index for c in proc.idle_cores()] == [1]
        assert proc.executing(9).index == 0
        assert proc.executing(42) is None
