"""Unit tests for execution traces and task outcomes."""

import numpy as np
import pytest

from repro.core import TaskSet
from repro.sim import ExecutionTrace, TraceRecord


@pytest.fixture
def tasks():
    return TaskSet.from_tuples([(0, 10, 4), (0, 6, 2)])


def _rec(task, core, start, end, f, e=1.0):
    return TraceRecord(task_id=task, core=core, start=start, end=end, frequency=f, energy=e)


class TestTraceRecord:
    def test_derived(self):
        r = _rec(0, 0, 1.0, 3.0, 2.0)
        assert r.duration == 2.0
        assert r.work == pytest.approx(4.0)


class TestExecutionTrace:
    def test_sorted_iteration(self, tasks):
        tr = ExecutionTrace(tasks, 2, [_rec(0, 0, 5, 6, 1), _rec(1, 1, 0, 2, 1)])
        assert tr[0].start == 0

    def test_total_energy(self, tasks):
        tr = ExecutionTrace(tasks, 2, [_rec(0, 0, 0, 1, 1, e=2.5), _rec(1, 1, 0, 1, 1, e=1.5)])
        assert tr.total_energy == pytest.approx(4.0)

    def test_completion_time_interpolated(self, tasks):
        # task 0 needs 4 work; gets 2 in [0,2] and 4 in [2,6] at f=1:
        # completes at t=4 (half-way through the second record)
        tr = ExecutionTrace(
            tasks, 1, [_rec(0, 0, 0, 2, 1.0), _rec(0, 0, 2, 6, 1.0)]
        )
        out = tr.task_outcomes()[0]
        assert out.completed
        assert out.completion_time == pytest.approx(4.0)
        assert out.met_deadline
        assert out.lateness == pytest.approx(-6.0)

    def test_unfinished_task(self, tasks):
        tr = ExecutionTrace(tasks, 1, [_rec(0, 0, 0, 1, 1.0)])
        out = tr.task_outcomes()[0]
        assert not out.completed
        assert out.lateness == float("inf")
        assert 0 in tr.deadline_misses()

    def test_late_task(self, tasks):
        # task 1 (deadline 6) finishes at 8
        tr = ExecutionTrace(tasks, 1, [_rec(1, 0, 6, 8, 1.0)])
        out = tr.task_outcomes()[1]
        assert out.completed and not out.met_deadline
        assert out.lateness == pytest.approx(2.0)

    def test_core_utilization(self, tasks):
        tr = ExecutionTrace(tasks, 2, [_rec(0, 0, 0, 5, 1.0)])
        util = tr.core_utilization()  # horizon is [0, 10]
        np.testing.assert_allclose(util, [0.5, 0.0])

    def test_by_core_and_by_task(self, tasks):
        tr = ExecutionTrace(
            tasks, 2, [_rec(0, 0, 0, 1, 1), _rec(1, 1, 0, 1, 1), _rec(0, 1, 2, 3, 1)]
        )
        assert len(tr.by_core(1)) == 2
        assert len(tr.by_task(0)) == 2
        assert len(tr) == 3
