"""Unit tests for the schedule executor (replay)."""

import pytest

from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.power import PolynomialPower
from repro.sim import CoreBusyError, execute_schedule
from tests.conftest import random_instance


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.1)


class TestReplay:
    def test_energy_matches_analytic(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4), (0, 10, 2)])
        segs = [Segment(0, 0, 0.0, 8.0, 0.5), Segment(1, 1, 0.0, 4.0, 0.5)]
        sched = Schedule(ts, 2, power, segs)
        rep = execute_schedule(sched)
        assert rep.total_energy == pytest.approx(sched.total_energy())

    def test_back_to_back_segments_on_one_core(self, power):
        ts = TaskSet.from_tuples([(0, 10, 2), (0, 10, 2)])
        segs = [Segment(0, 0, 0.0, 2.0, 1.0), Segment(1, 0, 2.0, 4.0, 1.0)]
        rep = execute_schedule(Schedule(ts, 1, power, segs))
        assert rep.all_deadlines_met

    def test_conflicting_segments_raise(self, power):
        ts = TaskSet.from_tuples([(0, 10, 2), (0, 10, 2)])
        segs = [Segment(0, 0, 0.0, 3.0, 1.0), Segment(1, 0, 2.0, 4.0, 1.0)]
        with pytest.raises(CoreBusyError):
            execute_schedule(Schedule(ts, 1, power, segs))

    def test_miss_reported_not_raised(self, power):
        # schedule finishes after the deadline: soft failure
        ts = TaskSet.from_tuples([(0, 4, 4)])
        segs = [Segment(0, 0, 0.0, 8.0, 0.5)]
        rep = execute_schedule(Schedule(ts, 1, power, segs))
        assert rep.deadline_misses == [0]
        assert not rep.all_deadlines_met

    def test_incomplete_work_is_a_miss(self, power):
        ts = TaskSet.from_tuples([(0, 4, 4)])
        segs = [Segment(0, 0, 0.0, 2.0, 1.0)]  # only half the work
        rep = execute_schedule(Schedule(ts, 1, power, segs))
        assert rep.deadline_misses == [0]

    def test_per_core_energy_sums(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4), (0, 10, 2)])
        segs = [Segment(0, 0, 0.0, 8.0, 0.5), Segment(1, 1, 0.0, 4.0, 0.5)]
        rep = execute_schedule(Schedule(ts, 2, power, segs))
        assert sum(rep.per_core_energy) == pytest.approx(rep.total_energy)

    def test_empty_schedule(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4)])
        rep = execute_schedule(Schedule(ts, 1, power, []))
        assert rep.total_energy == 0.0
        assert rep.deadline_misses == [0]  # no work done


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("method", ["even", "der"])
    def test_pipeline_schedules_replay_exactly(self, seed, method):
        tasks, power = random_instance(seed)
        res = SubintervalScheduler(tasks, 4, power).final(method)
        rep = execute_schedule(res.schedule)
        assert rep.all_deadlines_met
        assert rep.total_energy == pytest.approx(res.energy, rel=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_intermediate_schedules_replay(self, seed):
        tasks, power = random_instance(seed)
        res = SubintervalScheduler(tasks, 4, power).intermediate("der")
        rep = execute_schedule(res.schedule)
        assert rep.all_deadlines_met
        assert rep.total_energy == pytest.approx(res.energy, rel=1e-7)
