"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import EventQueue, SimulationClock


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        q.push(1.0, "late", priority=5)
        q.push(1.0, "early", priority=0)
        assert q.pop().kind == "early"

    def test_insertion_order_breaks_remaining_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, "x")
        assert q.peek_time() == 4.0
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_payload_carried(self):
        q = EventQueue()
        q.push(0.0, "k", payload={"a": 1})
        assert q.pop().payload == {"a": 1}

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "k")
        assert q


class TestClock:
    def test_advances(self):
        c = SimulationClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_no_time_travel(self):
        c = SimulationClock(10.0)
        with pytest.raises(ValueError):
            c.advance_to(5.0)

    def test_tolerates_jitter(self):
        c = SimulationClock(1.0)
        c.advance_to(1.0 - 1e-12)  # within tolerance
        assert c.now == 1.0
