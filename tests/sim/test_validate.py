"""Failure-injection tests: every validator detector must fire."""

import pytest

from repro.core import Schedule, Segment, TaskSet
from repro.power import PolynomialPower
from repro.sim import ViolationKind, assert_valid, validate_schedule


@pytest.fixture
def tasks():
    return TaskSet.from_tuples([(0, 10, 4), (2, 8, 2)])


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.0)


def _sched(tasks, power, segs, m=2):
    return Schedule(tasks, m, power, segs)


class TestDetectors:
    def test_valid_schedule_passes(self, tasks, power):
        segs = [Segment(0, 0, 0.0, 8.0, 0.5), Segment(1, 1, 2.0, 6.0, 0.5)]
        assert validate_schedule(_sched(tasks, power, segs)) == []
        assert_valid(_sched(tasks, power, segs))

    def test_before_release_detected(self, tasks, power):
        segs = [Segment(1, 0, 0.0, 4.0, 0.5), Segment(0, 1, 0.0, 8.0, 0.5)]
        kinds = {v.kind for v in validate_schedule(_sched(tasks, power, segs))}
        assert ViolationKind.OUTSIDE_WINDOW in kinds

    def test_after_deadline_detected(self, tasks, power):
        segs = [Segment(1, 0, 5.0, 9.0, 0.5), Segment(0, 1, 0.0, 8.0, 0.5)]
        kinds = {v.kind for v in validate_schedule(_sched(tasks, power, segs))}
        assert ViolationKind.OUTSIDE_WINDOW in kinds

    def test_core_conflict_detected(self, tasks, power):
        segs = [
            Segment(0, 0, 0.0, 8.0, 0.5),
            Segment(1, 0, 4.0, 8.0, 0.5),  # same core, overlapping
        ]
        kinds = {v.kind for v in validate_schedule(_sched(tasks, power, segs))}
        assert ViolationKind.CORE_CONFLICT in kinds

    def test_task_parallelism_detected(self, tasks, power):
        segs = [
            Segment(0, 0, 0.0, 4.0, 0.5),
            Segment(0, 1, 2.0, 6.0, 0.5),  # same task on two cores at once
        ]
        kinds = {v.kind for v in validate_schedule(_sched(tasks, power, segs))}
        assert ViolationKind.TASK_PARALLEL in kinds

    def test_work_mismatch_detected(self, tasks, power):
        segs = [Segment(0, 0, 0.0, 4.0, 0.5), Segment(1, 1, 2.0, 6.0, 0.5)]
        kinds = {v.kind for v in validate_schedule(_sched(tasks, power, segs))}
        assert ViolationKind.WORK_MISMATCH in kinds

    def test_work_check_can_be_disabled(self, tasks, power):
        segs = [Segment(0, 0, 0.0, 4.0, 0.5), Segment(1, 1, 2.0, 6.0, 0.5)]
        assert (
            validate_schedule(_sched(tasks, power, segs), check_completion=False)
            == []
        )

    def test_touching_segments_are_fine(self, tasks, power):
        segs = [
            Segment(0, 0, 0.0, 4.0, 1.0),
            Segment(1, 0, 4.0, 8.0, 0.5),  # same core, touching at t=4
        ]
        hard = [
            v
            for v in validate_schedule(_sched(tasks, power, segs), check_completion=False)
            if v.kind == ViolationKind.CORE_CONFLICT
        ]
        assert hard == []

    def test_assert_valid_message_lists_violations(self, tasks, power):
        segs = [Segment(0, 0, 0.0, 4.0, 0.5)]
        with pytest.raises(AssertionError, match="WORK_MISMATCH"):
            assert_valid(_sched(tasks, power, segs))

    def test_violation_str(self, tasks, power):
        segs = [Segment(0, 0, 0.0, 4.0, 0.5)]
        v = validate_schedule(_sched(tasks, power, segs))[0]
        assert "WORK_MISMATCH" in str(v)
