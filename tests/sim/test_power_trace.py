"""Tests for exact power profiles."""

import numpy as np
import pytest

from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.power import PolynomialPower
from repro.sim import power_trace
from tests.conftest import random_instance


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.1)


class TestStepFunction:
    def test_single_segment(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4)])
        sched = Schedule(ts, 1, power, [Segment(0, 0, 2.0, 6.0, 1.0)])
        tr = power_trace(sched)
        assert tr.at(1.0) == 0.0  # before
        assert tr.at(3.0) == pytest.approx(1.1)
        assert tr.at(7.0) == 0.0  # after
        assert tr.energy == pytest.approx(sched.total_energy())

    def test_overlapping_cores_sum(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4), (0, 10, 4)])
        segs = [Segment(0, 0, 0.0, 4.0, 1.0), Segment(1, 1, 2.0, 6.0, 2.0)]
        tr = power_trace(Schedule(ts, 2, power, segs))
        assert tr.at(1.0) == pytest.approx(1.1)
        assert tr.at(3.0) == pytest.approx(1.1 + 8.1)
        assert tr.at(5.0) == pytest.approx(8.1)
        assert tr.peak_power == pytest.approx(9.2)

    def test_energy_integral_cross_check(self):
        tasks, power = random_instance(0, n=12)
        sched = SubintervalScheduler(tasks, 4, power).final("der").schedule
        tr = power_trace(sched)
        assert tr.energy == pytest.approx(sched.total_energy(), rel=1e-9)

    def test_average_power(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4)])
        sched = Schedule(ts, 1, power, [Segment(0, 0, 0.0, 4.0, 1.0)])
        tr = power_trace(sched)
        assert tr.average_power == pytest.approx(1.1)  # span is [0, 4]

    def test_empty_schedule(self, power):
        ts = TaskSet.from_tuples([(0, 10, 4)])
        tr = power_trace(Schedule(ts, 1, power, []))
        assert tr.energy == 0.0
        assert tr.peak_power == 0.0

    def test_svg_renders(self):
        tasks, power = random_instance(1, n=6)
        sched = SubintervalScheduler(tasks, 2, power).final("der").schedule
        svg = power_trace(sched).to_svg(title="test")
        assert svg.startswith("<svg")
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)

    def test_shape_validation(self):
        from repro.sim.power_trace import PowerTrace

        with pytest.raises(ValueError):
            PowerTrace(times=np.array([0.0, 1.0]), levels=np.array([1.0, 2.0]))
