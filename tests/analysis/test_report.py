"""Unit tests for the reproduction-report generator."""

import pytest

from repro.analysis.report import (
    FIGURE_CLAIMS,
    Claim,
    generate_report,
    read_series_csv,
)


@pytest.fixture
def results(tmp_path):
    (tmp_path / "fig8.csv").write_text(
        "m,Idl,I1,F1,I2,F2\n"
        "2,0.74,3.33,2.78,1.75,1.41\n"
        "4,0.99,1.53,1.42,1.11,1.05\n"
        "12,1.0,1.0,1.0,1.0,1.0\n"
    )
    return tmp_path


class TestReadCsv:
    def test_columns(self, results):
        series = read_series_csv(results / "fig8.csv")
        assert series["m"] == [2.0, 4.0, 12.0]
        assert series["F2"] == [1.41, 1.05, 1.0]


class TestClaims:
    def test_fig8_claims_pass_on_good_data(self, results):
        series = read_series_csv(results / "fig8.csv")
        for claim in FIGURE_CLAIMS["fig8"]:
            assert claim.check(series), claim.text

    def test_fig8_claim_fails_on_bad_data(self, tmp_path):
        series = {"F2": [1.0, 1.5, 2.0]}  # worst at many cores: wrong shape
        worst_claim = FIGURE_CLAIMS["fig8"][0]
        assert not worst_claim.check(series)

    def test_all_figures_have_claims(self):
        for fig in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
            assert FIGURE_CLAIMS[fig]


class TestGenerate:
    def test_report_structure(self, results):
        report = generate_report(results)
        assert report.startswith("# Reproduction report")
        assert "## fig8" in report
        assert "✅" in report
        assert "Claims passed:" in report

    def test_missing_figures_skipped(self, results):
        report = generate_report(results)
        assert "SKIPPED" in report  # fig6 etc. have no CSV here

    def test_failures_marked(self, tmp_path):
        (tmp_path / "fig8.csv").write_text(
            "m,Idl,I1,F1,I2,F2\n2,1,1,1,1,1.0\n12,1,1,1,1,1.5\n"
        )
        report = generate_report(tmp_path)
        assert "❌" in report

    def test_missing_column_reported(self, tmp_path):
        (tmp_path / "fig11.csv").write_text("n,F1,F2\n5,1.1,1.0\n")
        report = generate_report(tmp_path)
        assert "missing column" in report

    def test_full_archive_passes(self):
        """The repository's own archived results must satisfy every claim."""
        from pathlib import Path

        results = Path(__file__).resolve().parent.parent.parent / "results"
        if not (results / "fig6.csv").exists():
            pytest.skip("no archived results in this checkout")
        report = generate_report(results)
        assert "❌" not in report
