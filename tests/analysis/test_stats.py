"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    RunningStats,
    bootstrap_ci,
    paired_sign_test,
)


class TestBootstrap:
    def test_mean_inside_interval(self, rng):
        x = rng.normal(10.0, 2.0, 200)
        ci = bootstrap_ci(x, seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert 10.0 in ci  # true mean covered (very high probability)

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, 20), seed=2)
        large = bootstrap_ci(rng.normal(0, 1, 2000), seed=2)
        assert large.width < small.width

    def test_deterministic(self, rng):
        x = rng.normal(0, 1, 50)
        a = bootstrap_ci(x, seed=7)
        b = bootstrap_ci(x, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_custom_statistic(self, rng):
        x = rng.exponential(1.0, 300)
        ci = bootstrap_ci(x, statistic=np.median, seed=3)
        assert ci.estimate == pytest.approx(float(np.median(x)))

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_boot=10)

    def test_str(self):
        ci = ConfidenceInterval(1.0, 0.9, 1.1, 0.95)
        assert "95%" in str(ci)


class TestSignTest:
    def test_identical_samples_p_one(self):
        x = [1.0, 2.0, 3.0]
        assert paired_sign_test(x, x) == 1.0

    def test_consistent_dominance_small_p(self):
        a = list(np.linspace(1, 2, 20))
        b = [v + 0.1 for v in a]
        assert paired_sign_test(a, b) < 0.01

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0, 1, 30)
        assert paired_sign_test(a, b) == pytest.approx(paired_sign_test(b, a))

    def test_balanced_diffs_large_p(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [1.1, 1.9, 3.1, 3.9]
        assert paired_sign_test(a, b) > 0.5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            paired_sign_test([1.0], [1.0, 2.0])

    def test_f2_beats_f1_on_shared_instances(self):
        """Statistical confirmation of the paper's core result."""
        from repro.experiments import PointSpec, run_replication

        spec = PointSpec(m=4, alpha=3.0, p0=0.1, n_tasks=20)
        f1, f2 = [], []
        for seed in range(12):
            s = run_replication(spec, seed)
            f1.append(s.values["F1"])
            f2.append(s.values["F2"])
        assert paired_sign_test(f2, f1) < 0.01  # F2 < F1, significantly


class TestRunningStats:
    def test_matches_numpy(self, rng):
        x = rng.normal(3, 2, 500)
        rs = RunningStats()
        rs.extend(x)
        assert rs.n == 500
        assert rs.mean == pytest.approx(float(x.mean()))
        assert rs.variance == pytest.approx(float(x.var(ddof=1)))
        assert rs.std == pytest.approx(float(x.std(ddof=1)))
        assert rs.minimum == float(x.min())
        assert rs.maximum == float(x.max())

    def test_sem(self, rng):
        x = rng.normal(0, 1, 100)
        rs = RunningStats()
        rs.extend(x)
        assert rs.sem == pytest.approx(rs.std / 10.0)

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean

    def test_single_observation(self):
        rs = RunningStats()
        rs.push(5.0)
        assert rs.mean == 5.0
        assert rs.variance == 0.0

    def test_merge_equals_sequential(self, rng):
        x = rng.normal(0, 1, 100)
        a, b, full = RunningStats(), RunningStats(), RunningStats()
        a.extend(x[:40])
        b.extend(x[40:])
        full.extend(x)
        merged = a.merge(b)
        assert merged.n == full.n
        assert merged.mean == pytest.approx(full.mean)
        assert merged.variance == pytest.approx(full.variance)
        assert merged.minimum == full.minimum

    def test_merge_with_empty(self, rng):
        x = rng.normal(0, 1, 10)
        a = RunningStats()
        a.extend(x)
        merged = a.merge(RunningStats())
        assert merged.mean == pytest.approx(a.mean)
        merged2 = RunningStats().merge(a)
        assert merged2.mean == pytest.approx(a.mean)
