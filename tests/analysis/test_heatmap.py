"""Tests for the heatmap SVG renderer and Table II integration."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import heatmap


class TestHeatmap:
    def test_valid_xml(self):
        svg = heatmap([[1.0, 2.0], [3.0, 4.0]], ["a", "b"], ["x", "y"], title="T")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_cells_annotated(self):
        svg = heatmap([[1.234, 2.0]], ["r"], ["c1", "c2"], precision=2)
        assert "1.23" in svg
        assert "2.00" in svg

    def test_labels_rendered(self):
        svg = heatmap([[1.0]], ["alpha=3"], ["p0=0"], x_label="p0", y_label="alpha")
        assert "alpha=3" in svg and "p0=0" in svg
        assert ">p0<" in svg

    def test_extremes_get_extreme_colors(self):
        svg = heatmap([[0.0, 1.0]], ["r"], ["lo", "hi"])
        assert "rgb(255,255,255)" in svg  # min -> white
        assert "rgb(0,114,178)" in svg  # max -> full blue

    def test_constant_grid_ok(self):
        svg = heatmap([[2.0, 2.0]], ["r"], ["a", "b"])
        ET.fromstring(svg)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            heatmap([[1.0, 2.0]], ["r"], ["only-one"])
        with pytest.raises(ValueError):
            heatmap([[1.0]], ["a", "b"], ["c"])
        with pytest.raises(ValueError):
            heatmap([[float("nan")]], ["a"], ["c"])

    def test_escaping(self):
        svg = heatmap([[1.0]], ["<r>"], ["&c"], title="a < b")
        ET.fromstring(svg)


class TestTable2Svg:
    def test_table2_heatmap(self):
        from repro.experiments import table2

        res = table2.run(reps=2, seed=0, alphas=(2.0, 3.0), p0s=(0.0, 0.2))
        svg = res.to_svg("F2")
        ET.fromstring(svg)
        assert "Table II" in svg
        with pytest.raises(ValueError):
            res.to_svg("F9")
