"""Unit tests for table formatting."""

import pytest

from repro.analysis import format_csv, format_series_block, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, 4.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[1]
        assert "2.5000" in lines[2]

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table\n")

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out and "1.2346" not in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_none_renders_empty(self):
        out = format_table(["a"], [[None]])
        assert out.splitlines()[2].strip() == ""


class TestFormatCsv:
    def test_roundtrip(self):
        out = format_csv(["x", "y"], [[1, 2.5], [3, 4.0]])
        lines = out.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"

    def test_float_precision(self):
        out = format_csv(["x"], [[1.0 / 3.0]])
        assert "0.3333333333" in out


class TestSeriesBlock:
    def test_layout(self):
        out = format_series_block(
            "p0", [0.0, 0.1], {"F1": [1.2, 1.3], "F2": [1.0, 1.1]}
        )
        lines = out.splitlines()
        assert "p0" in lines[0] and "F1" in lines[0] and "F2" in lines[0]
        assert len(lines) == 4
