"""Unit tests for the ASCII Gantt renderer."""

import pytest

from repro.analysis import render_gantt, task_glyph
from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.power import PolynomialPower


@pytest.fixture
def simple_schedule():
    ts = TaskSet.from_tuples([(0, 10, 4), (0, 10, 2)])
    power = PolynomialPower(3.0, 0.0)
    segs = [Segment(0, 0, 0.0, 8.0, 0.5), Segment(1, 1, 0.0, 4.0, 0.5)]
    return Schedule(ts, 2, power, segs)


class TestGlyph:
    def test_digits_then_letters(self):
        assert task_glyph(0) == "1"
        assert task_glyph(9) == "a"
        assert task_glyph(200) == "#"


class TestRender:
    def test_contains_core_rows(self, simple_schedule):
        out = render_gantt(simple_schedule)
        assert "M1 |" in out and "M2 |" in out

    def test_glyphs_present(self, simple_schedule):
        out = render_gantt(simple_schedule)
        assert "1" in out and "2" in out

    def test_legend(self, simple_schedule):
        out = render_gantt(simple_schedule)
        assert "legend:" in out
        assert "f=0.5" in out

    def test_legend_optional(self, simple_schedule):
        out = render_gantt(simple_schedule, show_legend=False)
        assert "legend:" not in out

    def test_width_validation(self, simple_schedule):
        with pytest.raises(ValueError):
            render_gantt(simple_schedule, width=3)

    def test_busy_proportions(self, simple_schedule):
        out = render_gantt(simple_schedule, width=100, show_legend=False)
        m1 = next(l for l in out.splitlines() if l.startswith("M1"))
        m2 = next(l for l in out.splitlines() if l.startswith("M2"))
        # task 0 occupies ~80% of M1's lane; task 1 ~40% of M2's
        assert 70 <= m1.count("1") <= 90
        assert 30 <= m2.count("2") <= 50

    def test_six_task_render(self, six_tasks, cube_power):
        sched = SubintervalScheduler(six_tasks, 4, cube_power).final("der").schedule
        out = render_gantt(sched)
        assert out.count("M") >= 4  # four cores
