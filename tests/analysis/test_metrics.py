"""Unit tests for NEC metrics and aggregation."""

import pytest

from repro.analysis import NecAggregate, NecSample, SERIES, aggregate, nec


class TestNec:
    def test_ratio(self):
        assert nec(12.0, 10.0) == pytest.approx(1.2)

    def test_rejects_nonpositive_optimal(self):
        with pytest.raises(ValueError):
            nec(1.0, 0.0)


class TestNecSample:
    def test_construction(self):
        s = NecSample(optimal_energy=10.0, values={"F2": 1.05})
        assert s["F2"] == 1.05

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            NecSample(optimal_energy=10.0, values={"F2": -0.5})

    def test_rejects_nonpositive_optimal(self):
        with pytest.raises(ValueError):
            NecSample(optimal_energy=0.0, values={})


class TestAggregate:
    def _samples(self):
        return [
            NecSample(10.0, {"F1": 1.2, "F2": 1.0}, extra={"miss": 0.0}),
            NecSample(12.0, {"F1": 1.4, "F2": 1.1}, extra={"miss": 1.0}),
        ]

    def test_mean_std(self):
        agg = aggregate(self._samples())
        assert agg.n == 2
        assert agg.mean["F1"] == pytest.approx(1.3)
        assert agg.std["F1"] == pytest.approx(0.1414, abs=1e-3)
        assert agg.minimum["F2"] == 1.0
        assert agg.maximum["F2"] == 1.1

    def test_extra_mean(self):
        agg = aggregate(self._samples())
        assert agg.extra_mean["miss"] == pytest.approx(0.5)

    def test_single_sample_std_zero(self):
        agg = aggregate([NecSample(10.0, {"F2": 1.0})])
        assert agg.std["F2"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_row_ordering(self):
        agg = aggregate(
            [NecSample(1.0, {s: float(i) for i, s in enumerate(SERIES)})]
        )
        assert agg.row() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_getitem(self):
        agg = aggregate([NecSample(1.0, {"F2": 1.23})])
        assert agg["F2"] == pytest.approx(1.23)
