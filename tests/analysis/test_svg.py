"""Unit tests for the SVG renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import gantt_svg, line_chart
from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.power import PolynomialPower


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart([0, 1, 2], {"F2": [1.0, 1.1, 1.05]})
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_series_rendered_as_paths(self):
        svg = line_chart([0, 1, 2], {"A": [1, 2, 3], "B": [3, 2, 1]})
        assert svg.count('stroke-width="1.8"') >= 2  # two series lines

    def test_legend_labels(self):
        svg = line_chart([0, 1], {"NEC of F2": [1.0, 1.1]})
        assert "NEC of F2" in svg

    def test_title_and_axes(self):
        svg = line_chart([0, 1], {"s": [1, 2]}, title="T", x_label="x", y_label="y")
        assert ">T<" in svg and ">x<" in svg and ">y<" in svg

    def test_title_escaped(self):
        svg = line_chart([0, 1], {"s": [1, 2]}, title="a < b & c")
        _parse(svg)  # must stay valid XML

    def test_nan_points_skipped(self):
        svg = line_chart([0, 1, 2], {"s": [1.0, float("nan"), 2.0]})
        _parse(svg)

    def test_flat_series(self):
        svg = line_chart([0, 1, 2], {"s": [1.0, 1.0, 1.0]})
        _parse(svg)

    def test_sub_ulp_spread_terminates(self):
        # spread below float resolution around 1.0: a naive tick step is
        # smaller than one ulp and the tick loop could never advance
        ys = [0.9999999999999999, 1.0, 1.0000000000000002]
        svg = line_chart([0, 1, 2], {"s": ys})
        _parse(svg)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})

    def test_empty_x(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0], {"s": [float("nan")]})


class TestGanttSvg:
    def _schedule(self):
        ts = TaskSet.from_tuples([(0, 10, 4), (0, 10, 2)])
        segs = [Segment(0, 0, 0.0, 8.0, 0.5), Segment(1, 1, 0.0, 4.0, 0.5)]
        return Schedule(ts, 2, PolynomialPower(3.0, 0.0), segs)

    def test_valid_xml(self):
        svg = gantt_svg(self._schedule(), title="S")
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_lanes_and_segments(self):
        svg = gantt_svg(self._schedule())
        assert "M1" in svg and "M2" in svg
        # one background rect per lane + one rect per segment + canvas
        assert svg.count("<rect") >= 5

    def test_six_task_example_renders(self, six_tasks, cube_power):
        sched = SubintervalScheduler(six_tasks, 4, cube_power).final("der").schedule
        svg = gantt_svg(sched, title="S^F2")
        _parse(svg)
        assert "M4" in svg
