"""Tests for schedule comparison summaries."""

import pytest

from repro.analysis import comparison_table, summarize
from repro.core import SubintervalScheduler
from repro.optimal import solve_optimal
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def instance():
    tasks, power = random_instance(0, n=10)
    sch = SubintervalScheduler(tasks, 4, power)
    opt = solve_optimal(tasks, 4, power)
    return sch, opt


class TestSummarize:
    def test_fields(self, instance):
        sch, opt = instance
        res = sch.final("der")
        s = summarize("F2", res.schedule, optimal_energy=opt.energy)
        assert s.energy == pytest.approx(res.energy)
        assert s.nec == pytest.approx(res.energy / opt.energy)
        assert s.valid
        assert s.switches > 0
        assert s.busy_time > 0

    def test_no_optimal_means_no_nec(self, instance):
        sch, _ = instance
        s = summarize("F2", sch.final("der").schedule)
        assert s.nec is None

    def test_invalid_flagged(self, instance):
        from repro.core import Schedule, Segment

        sch, _ = instance
        base = sch.final("der").schedule
        broken = Schedule(base.tasks, base.n_cores, base.power, list(base)[:1])
        s = summarize("broken", broken)
        assert not s.valid


class TestComparisonTable:
    def test_renders_all_schedules(self, instance):
        sch, opt = instance
        table = comparison_table(
            {
                "F1": sch.final("even").schedule,
                "F2": sch.final("der").schedule,
            },
            optimal_energy=opt.energy,
            title="comparison",
        )
        assert "F1" in table and "F2" in table
        assert "comparison" in table
        assert "NEC" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_table({})
