"""Tests for LaTeX table emission."""

import pytest

from repro.analysis.latex import latex_escape, latex_grid_table, latex_series_table


class TestEscape:
    def test_specials(self):
        assert latex_escape("a_b & 50%") == r"a\_b \& 50\%"

    def test_backslash(self):
        assert latex_escape("a\\b") == r"a\textbackslash{}b"

    def test_plain_passthrough(self):
        assert latex_escape("F2") == "F2"


class TestSeriesTable:
    def test_structure(self):
        out = latex_series_table(
            "p0",
            [0.0, 0.2],
            {"F1": [1.4, 1.3], "F2": [1.07, 1.04]},
            caption="NEC vs p0",
            label="tab:fig6",
        )
        assert r"\begin{table}" in out
        assert r"\toprule" in out and r"\bottomrule" in out
        assert r"\caption{NEC vs p0}" in out
        assert r"\label{tab:fig6}" in out
        assert "1.0700" in out
        assert out.count(r" \\") == 3  # header + 2 data rows

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            latex_series_table("x", [1], {"s": [1.0, 2.0]})

    def test_empty_x(self):
        with pytest.raises(ValueError):
            latex_series_table("x", [], {})

    def test_from_sweep_result(self):
        from repro.experiments import PointSpec, sweep

        res = sweep("t", "p0", [(0.0, PointSpec(n_tasks=5))], reps=2)
        out = latex_series_table(res.x_label, res.x_values, res.series)
        assert "Idl" in out and "F2" in out


class TestGridTable:
    def test_structure(self):
        out = latex_grid_table(
            [[1.0, 1.1], [1.2, 1.3]],
            row_labels=["2.0", "3.0"],
            col_labels=["0", "0.2"],
            corner="alpha \\ p0",
            precision=2,
        )
        assert "1.30" in out
        assert r"\toprule" in out

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            latex_grid_table([[1.0]], ["a", "b"], ["c"])
        with pytest.raises(ValueError):
            latex_grid_table([[1.0, 2.0]], ["a"], ["c"])
