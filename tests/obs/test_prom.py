"""Prometheus exposition rendering + the /metrics content negotiation."""

import asyncio

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import CONTENT_TYPE, render_prometheus
from repro.service import SchedulingService, ServiceConfig
from repro.service.loadgen import request_once

_TASKS = [[0.0, 10.0, 8.0], [2.0, 18.0, 14.0], [4.0, 16.0, 8.0]]


def parse_exposition(text: str) -> dict:
    """Tiny 0.0.4 parser: family → {type, samples: {series: value}}."""
    families: dict[str, dict] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, fam, kind = line.split()
            families[fam] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), line
            continue
        series, value_str = line.rsplit(" ", 1)
        value = float(value_str)  # must parse — NaN included
        name = series.split("{", 1)[0]
        # longest family prefix wins (latency_ms vs latency_ms_window_len)
        base = max(
            (f for f in families if name == f or name.startswith(f)),
            key=len,
            default=None,
        )
        assert base is not None, f"sample {line!r} before its TYPE header"
        families[base]["samples"][series] = value
    return families


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry(histogram_window=4)
    reg.counter("requests_total:/schedule").inc(3)
    reg.counter("responses:/schedule:200").inc(2)
    reg.counter("cache_hits").inc()
    reg.gauge("in_progress").set(2)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):  # wraps the window of 4
        reg.histogram("latency_ms:/schedule").observe(v)
    return reg


class TestRenderer:
    def test_colon_convention_becomes_labels(self):
        fams = parse_exposition(render_prometheus(_loaded_registry().snapshot()))
        assert fams["repro_requests_total"]["samples"][
            'repro_requests_total{path="/schedule"}'
        ] == 3
        assert fams["repro_responses_total"]["samples"][
            'repro_responses_total{path="/schedule",status="200"}'
        ] == 2

    def test_counters_get_total_suffix(self):
        fams = parse_exposition(render_prometheus(_loaded_registry().snapshot()))
        assert "repro_cache_hits_total" in fams
        for fam, data in fams.items():
            if data["type"] == "counter":
                assert fam.endswith("_total")

    def test_histogram_summary_and_window_len(self):
        fams = parse_exposition(render_prometheus(_loaded_registry().snapshot()))
        fam = fams["repro_latency_ms"]
        assert fam["type"] == "summary"
        label = 'path="/schedule"'
        quantile = fam["samples"][
            f'repro_latency_ms{{{label},quantile="0.5"}}'
        ]
        # window of 4 after 6 observations → median of [3,4,5,6]
        assert quantile == 4.5
        assert fam["samples"][f"repro_latency_ms_count{{{label}}}"] == 6
        assert fam["samples"][f"repro_latency_ms_sum{{{label}}}"] == 21
        window = fams["repro_latency_ms_window_len"]
        assert window["type"] == "gauge"
        assert window["samples"][
            f"repro_latency_ms_window_len{{{label}}}"
        ] == 4

    def test_every_histogram_family_has_window_len(self):
        reg = _loaded_registry()
        reg.histogram("stage_ms:engine.solve").observe(1.5)
        fams = parse_exposition(render_prometheus(reg.snapshot()))
        summaries = [f for f, d in fams.items() if d["type"] == "summary"]
        assert summaries
        for fam in summaries:
            assert f"{fam}_window_len" in fams

    def test_extra_gauges_and_escaping(self):
        text = render_prometheus(
            MetricsRegistry().snapshot(),
            extra_gauges={"uptime_seconds": 12.5, 'odd:/we"ird': 1},
        )
        fams = parse_exposition(text)
        assert fams["repro_uptime_seconds"]["samples"][
            "repro_uptime_seconds"
        ] == 12.5
        assert 'repro_odd{path="/we\\"ird"}' in fams["repro_odd"]["samples"]

    def test_empty_histogram_quantiles_are_nan_not_crash(self):
        reg = MetricsRegistry()
        reg.histogram("latency_ms:/x")  # created, never observed
        text = render_prometheus(reg.snapshot())
        assert 'quantile="0.5"} NaN' in text


class TestContentNegotiation:
    def _fetch(self, accept: str | None):
        async def scenario():
            service = SchedulingService(
                ServiceConfig(port=0, workers=0, log_interval=0)
            )
            await service.start()
            try:
                await request_once(
                    "127.0.0.1", service.port, "POST", "/schedule",
                    {"tasks": _TASKS, "m": 2, "method": "der"},
                )
                headers = {"Accept": accept} if accept else None
                return await request_once(
                    "127.0.0.1", service.port, "GET", "/metrics",
                    headers=headers,
                )
            finally:
                await service.stop()

        return asyncio.run(scenario())

    def test_json_remains_the_default(self):
        status, body = self._fetch(None)
        assert status == 200
        assert "text" not in body
        hist = body["metrics"]["histograms"]
        assert hist  # latency + stage histograms exist
        for snap in hist.values():
            assert "window_len" in snap and "window" in snap

    def test_accept_text_plain_returns_parseable_exposition(self):
        status, body = self._fetch("text/plain")
        assert status == 200
        # the client only wraps non-JSON content types in {"text": ...},
        # so this also proves the Content-Type header changed
        fams = parse_exposition(body["text"])
        assert fams["repro_requests_total"]["samples"][
            'repro_requests_total{path="/schedule"}'
        ] >= 1
        # the traced request pipeline feeds stage histograms, and every
        # summary family carries its window_len gauge
        assert any(f.startswith("repro_stage_ms") for f in fams)
        for fam, data in fams.items():
            if data["type"] == "summary":
                assert f"{fam}_window_len" in fams
        assert fams["repro_uptime_seconds"]["samples"]["repro_uptime_seconds"] >= 0

    def test_openmetrics_accept_also_negotiates_text(self):
        status, body = self._fetch("application/openmetrics-text")
        assert status == 200
        assert "text" in body

    def test_content_type_constant_is_prometheus_0_0_4(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
