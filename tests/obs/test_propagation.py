"""Trace propagation: service → pool → engine → solver, across crashes.

The worker boundary is the interesting part: spans created inside a
(thread- or process-pool) worker ride the result dict home and are
stitched back onto the request's trace.  A crashed worker takes its
buffered spans with it, so the dispatcher reconstructs the lost attempt
as a ``pool.attempt`` span — visible on the *same* trace as the retry
that replaced it.
"""

import asyncio
import time

from repro.obs import context as obs
from repro.obs.report import group_traces, load_spans
from repro.service import SchedulingService, ServiceConfig
from repro.service.config import RetryPolicy
from repro.service.faults import FaultInjector, FaultSpec
from repro.service.loadgen import request_once
from repro.service.metrics import MetricsRegistry
from repro.service.pool import SolveDispatcher

_TASKS = [[0.0, 10.0, 8.0], [2.0, 18.0, 14.0], [4.0, 16.0, 8.0]]


def _carrier(tid: str = None) -> dict:
    return {
        "trace_id": tid or obs.new_trace_id(),
        "parent": "ab" * 8,
        "enqueued_at": time.time(),
    }


def _job(i: int = 0, **over) -> dict:
    rows = [[r, d, c + i, f"t{k}"] for k, (r, d, c) in enumerate(_TASKS)]
    return {
        "tasks": rows,
        "m": 2,
        "alpha": 3.0,
        "static": 0.1,
        "method": "der",
        "include_schedule": False,
        "_trace": _carrier(),
        **over,
    }


def _run_service(scenario, **config):
    async def runner():
        service = SchedulingService(
            ServiceConfig(port=0, workers=0, log_interval=0, **config)
        )
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    return asyncio.run(runner())


class TestServiceSpanTrees:
    def test_schedule_request_exports_complete_chain(self, tmp_path):
        path = tmp_path / "out.jsonl"

        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                {"tasks": _TASKS, "m": 2, "method": "der"},
            )
            assert status == 200 and "_spans" not in body

        _run_service(scenario, trace_path=str(path))
        traces = group_traces(load_spans(path))
        (tv,) = traces
        names = tv.names
        for required in (
            "service.request", "cache.probe", "batch.queue",
            "pool.solve", "engine.solve", "solver:subinterval-der",
        ):
            assert required in names, f"missing {required}: {names}"
        # parentage: solver under engine under pool under the root
        root = tv.root
        assert root["attrs"]["path"] == "/schedule"
        assert root["attrs"]["http_status"] == 200
        pool = tv.by_name("pool.solve")[0]
        engine = tv.by_name("engine.solve")[0]
        solver = tv.by_name("solver:subinterval-der")[0]
        assert pool["parent_id"] == root["span_id"]
        assert engine["parent_id"] == pool["span_id"]
        assert solver["parent_id"] == engine["span_id"]
        assert tv.by_name("batch.queue")[0]["parent_id"] == root["span_id"]
        assert tv.is_scheduled() and tv.is_complete()

    def test_client_trace_id_header_is_honored(self, tmp_path):
        path = tmp_path / "out.jsonl"
        tid = "fe" * 16

        async def scenario(service):
            await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                {"tasks": _TASKS, "m": 2, "method": "der"},
                headers={"x-trace-id": tid},
            )

        _run_service(scenario, trace_path=str(path))
        spans = load_spans(path)
        assert spans and all(sp["trace_id"] == tid for sp in spans)

    def test_cache_hit_trace_has_probe_but_no_solve(self, tmp_path):
        path = tmp_path / "out.jsonl"

        async def scenario(service):
            payload = {"tasks": _TASKS, "m": 2, "method": "der"}
            await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", payload
            )
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule", payload
            )
            assert status == 200 and body["cache_hit"] is True
            assert "_spans" not in body

        _run_service(scenario, trace_path=str(path))
        traces = group_traces(load_spans(path))
        assert len(traces) == 2
        hit = [tv for tv in traces if tv.cache_hit()]
        assert len(hit) == 1
        assert "pool.solve" not in hit[0].names
        assert not hit[0].is_scheduled()

    def test_optimal_request_is_traced_too(self, tmp_path):
        path = tmp_path / "out.jsonl"

        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/optimal",
                {"tasks": _TASKS, "m": 2, "alpha": 3.0, "static": 0.1},
            )
            assert status == 200 and "_spans" not in body

        _run_service(scenario, trace_path=str(path))
        (tv,) = group_traces(load_spans(path))
        assert {"service.request", "pool.solve", "engine.solve"} <= tv.names
        assert any(n.startswith("solver:") for n in tv.names)

    def test_no_trace_path_exports_nothing_but_feeds_stage_metrics(self):
        async def scenario(service):
            await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                {"tasks": _TASKS, "m": 2, "method": "der"},
            )
            snap = service.metrics.snapshot()
            stage = [
                k for k in snap["histograms"] if k.startswith("stage_ms:")
            ]
            assert "stage_ms:engine.solve" in stage
            assert "stage_ms:service.request" in stage
            assert service._exporter is None

        _run_service(scenario)

    def test_sampling_zero_exports_no_spans(self, tmp_path):
        path = tmp_path / "out.jsonl"

        async def scenario(service):
            await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                {"tasks": _TASKS, "m": 2, "method": "der"},
            )

        _run_service(scenario, trace_path=str(path), trace_sample=0.0)
        assert load_spans(path) == []


class TestCrashRetryPropagation:
    def _chaotic(self, retries: int) -> tuple[SolveDispatcher, MetricsRegistry]:
        metrics = MetricsRegistry()
        return (
            SolveDispatcher(
                0,
                metrics=metrics,
                retry=RetryPolicy(max_retries=retries, backoff_base=0.001),
                injector=FaultInjector(FaultSpec.parse("kill=1.0,seed=3")),
            ),
            metrics,
        )

    def test_retry_links_crashed_attempt_to_same_trace(self):
        dispatcher, metrics = self._chaotic(retries=1)
        jobs = [_job(i) for i in range(3)]
        results = asyncio.run(dispatcher.solve_batch(jobs))
        assert metrics.counter("job_retries").value == 3
        for job, result in zip(jobs, results):
            assert "error" not in result
            spans = result["_spans"]
            tid = job["_trace"]["trace_id"]
            assert all(sp["trace_id"] == tid for sp in spans)
            attempts = [sp for sp in spans if sp["name"] == "pool.attempt"]
            assert len(attempts) == 1
            assert attempts[0]["status"] == "error"
            assert attempts[0]["attrs"]["outcome"] == "crashed"
            assert attempts[0]["attrs"]["attempt"] == 1
            # the successful retry's worker spans are on the same trace
            names = {sp["name"] for sp in spans}
            assert {"batch.queue", "pool.solve", "engine.solve"} <= names

    def test_abandoned_jobs_carry_marked_attempt_spans(self):
        dispatcher, metrics = self._chaotic(retries=0)
        jobs = [_job(i) for i in range(2)]
        results = asyncio.run(dispatcher.solve_batch(jobs))
        assert metrics.counter("jobs_abandoned").value == 2
        for job, result in zip(jobs, results):
            assert result["abandoned"] is True
            (attempt,) = result["_spans"]
            assert attempt["name"] == "pool.attempt"
            assert attempt["attrs"]["outcome"] == "abandoned"
            assert attempt["trace_id"] == job["_trace"]["trace_id"]

    def test_untraced_jobs_survive_crashes_without_span_sidecars(self):
        dispatcher, _ = self._chaotic(retries=1)
        jobs = [_job(i) for i in range(2)]
        for job in jobs:
            job.pop("_trace")
        results = asyncio.run(dispatcher.solve_batch(jobs))
        for result in results:
            assert "error" not in result
            assert "_spans" not in result

    def test_end_to_end_crash_retry_trace_over_http(self, tmp_path):
        """Acceptance: crash → retry keeps the whole story on one trace."""
        path = tmp_path / "out.jsonl"

        async def scenario(service):
            status, body = await request_once(
                "127.0.0.1", service.port, "POST", "/schedule",
                {"tasks": _TASKS, "m": 2, "method": "der"},
            )
            assert status == 200
            assert "error" not in body

        _run_service(
            scenario,
            trace_path=str(path),
            faults="kill=1.0,seed=3",
            retry_max=1,
            retry_backoff=0.001,
        )
        (tv,) = group_traces(load_spans(path))
        attempts = tv.by_name("pool.attempt")
        assert len(attempts) == 1
        assert attempts[0]["attrs"]["outcome"] == "crashed"
        assert tv.is_complete()  # the retry completed the chain
