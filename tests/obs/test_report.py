"""The ``repro trace`` analyzer: loading, grouping, stages, critical path."""

import json

from repro.obs.report import (
    TraceView,
    cache_attribution,
    critical_path,
    format_trace_report,
    group_traces,
    load_spans,
    stage_breakdown,
    trace_summary,
)

_T1 = "aa" * 16
_T2 = "bb" * 16


def _sp(name, trace=_T1, span_id="s1", parent=None, start=0.0, dur=1.0, **attrs):
    return {
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start": start,
        "dur_ms": dur,
        "status": "ok",
        "attrs": attrs,
    }


def _scheduled_trace(trace=_T1, base=100.0, solve_ms=8.0):
    """A complete service→pool→engine→solver tree plus queue wait."""
    return [
        _sp("service.request", trace, "r", None, base, 12.0,
            path="/schedule", method="POST", http_status=200),
        _sp("cache.probe", trace, "c", "r", base, 0.05, hit=False),
        _sp("batch.queue", trace, "q", "r", base + 0.001, 2.0),
        _sp("pool.solve", trace, "p", "r", base + 0.003, 9.0),
        _sp("engine.solve", trace, "e", "p", base + 0.004, solve_ms,
            solver="subinterval-der"),
        _sp("solver:subinterval-der", trace, "s", "e", base + 0.005,
            solve_ms - 1.0),
    ]


def _hit_trace(trace=_T2, base=200.0):
    return [
        _sp("service.request", trace, "r2", None, base, 0.4,
            path="/schedule", method="POST", http_status=200),
        _sp("cache.probe", trace, "c2", "r2", base, 0.05, hit=True),
    ]


class TestLoadSpans:
    def test_skips_blank_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = _sp("engine.solve")
        path.write_text(
            "\n".join(
                [
                    json.dumps(good),
                    "",
                    '{"torn": ',  # crashed writer
                    '"just a string"',  # json, but not a span
                    '{"name": "no-trace-id"}',
                    json.dumps(good),
                ]
            )
        )
        spans = load_spans(path)
        assert len(spans) == 2
        assert all(sp["name"] == "engine.solve" for sp in spans)


class TestTraceView:
    def test_root_prefers_service_request_over_other_orphans(self):
        spans = _scheduled_trace()
        # an orphan whose parent was lost with a crashed worker
        spans.append(_sp("pool.attempt", _T1, "x", "gone", 100.0, 1.0))
        (tv,) = group_traces(spans)
        assert tv.root["name"] == "service.request"
        assert tv.is_scheduled() and tv.is_complete()

    def test_incomplete_when_worker_chain_is_missing(self):
        spans = [s for s in _scheduled_trace() if s["name"] != "engine.solve"]
        (tv,) = group_traces(spans)
        assert tv.is_scheduled()
        assert not tv.is_complete()

    def test_cache_hit_trace_is_not_scheduled(self):
        (tv,) = group_traces(_hit_trace())
        assert tv.cache_hit()
        assert not tv.is_scheduled()

    def test_group_traces_orders_by_start(self):
        spans = _hit_trace() + _scheduled_trace()  # T2 starts later
        traces = group_traces(spans)
        assert [tv.trace_id for tv in traces] == [_T1, _T2]


class TestAggregation:
    def test_stage_breakdown_stats(self):
        spans = [_sp("engine.solve", dur=d, span_id=f"s{d}") for d in (2.0, 4.0)]
        stats = stage_breakdown(spans)["engine.solve"]
        assert stats["count"] == 2
        assert stats["mean"] == 3.0
        assert stats["p50"] == 3.0
        assert stats["max"] == 4.0

    def test_critical_path_descends_latest_finisher_with_self_time(self):
        (tv,) = group_traces(_scheduled_trace())
        path = critical_path(tv)
        assert [sp["name"] for sp, _ in path] == [
            "service.request",
            "pool.solve",
            "engine.solve",
            "solver:subinterval-der",
        ]
        # each link's self time = dur minus the descended child's dur
        self_by_name = {sp["name"]: self_ms for sp, self_ms in path}
        assert self_by_name["service.request"] == 3.0  # 12 - 9
        assert self_by_name["engine.solve"] == 1.0  # 8 - 7
        assert self_by_name["solver:subinterval-der"] == 7.0  # leaf

    def test_cache_attribution_populations(self):
        traces = group_traces(_scheduled_trace() + _hit_trace())
        attr = cache_attribution(traces)
        assert attr["schedule_requests"] == 2
        assert attr["hits"] == 1 and attr["misses"] == 1
        assert attr["hit_rate"] == 0.5
        assert attr["hit_p50_ms"] == 0.4
        assert attr["miss_p50_ms"] == 12.0


class TestSummaryAndReport:
    def _spans(self):
        broken = [
            s
            for s in _scheduled_trace("cc" * 16, base=300.0)
            if s["name"] not in ("engine.solve", "solver:subinterval-der")
        ]
        return _scheduled_trace() + _hit_trace() + broken

    def test_trace_summary_counts_and_stages(self):
        s = trace_summary(self._spans())
        assert s["traces"] == 3
        assert s["scheduled_traces"] == 2
        assert s["incomplete_traces"] == 1
        assert s["incomplete_trace_ids"] == ["cc" * 16]
        assert s["stages"]["solve"]["count"] == 1  # only the complete trace
        assert s["stages"]["queue/batch"]["count"] == 2
        assert s["stages"]["pack"]["count"] == 0  # include_schedule absent
        assert s["request_ms"]["count"] == 3
        assert s["cache"]["hits"] == 1

    def test_format_trace_report_mentions_everything(self):
        text = format_trace_report(self._spans())
        assert "incomplete: 1" in text
        assert "per-stage latency" in text
        assert "queue/batch" in text
        assert "cache attribution: 1/3" in text
        assert "critical path of slowest trace" in text
        assert "solver:subinterval-der" in text

    def test_empty_export_degrades_gracefully(self):
        s = trace_summary([])
        assert s["spans"] == 0 and s["traces"] == 0
        assert s["slowest_trace"]["trace_id"] is None
        assert "spans: 0" in format_trace_report([])
