"""Profiling hooks and the unified ``repro solve --profile`` report."""

import time
from types import SimpleNamespace

from repro.obs import context as obs
from repro.obs.profile import format_solve_profile, profiled, span_tree_lines


class TestProfiled:
    def test_records_wall_and_cpu_onto_the_span(self):
        with obs.capture() as spans:
            with profiled("solver:kernel", solver="interior-point") as timer:
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < 0.01:
                    sum(range(200))  # keep a core busy
        assert timer.wall_s >= 0.01
        assert timer.cpu_s > 0
        assert 0 < timer.cpu_fraction <= 8.0  # process_time sums all threads
        (sp,) = spans
        assert sp["name"] == "solver:kernel"
        assert sp["attrs"]["solver"] == "interior-point"
        assert sp["attrs"]["cpu_ms"] == round(timer.cpu_s * 1e3, 4)
        assert sp["attrs"]["cpu_fraction"] == round(timer.cpu_fraction, 4)

    def test_zero_wall_time_gives_zero_fraction(self):
        from repro.obs.profile import ProfiledTimer

        assert ProfiledTimer(name="x").cpu_fraction == 0.0

    def test_exception_still_fills_the_timer(self):
        with obs.capture() as spans:
            try:
                with profiled("boom") as timer:
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
        assert timer.wall_s > 0
        assert spans[0]["status"] == "error"
        assert "cpu_ms" in spans[0]["attrs"]


class TestSpanTreeLines:
    def _spans(self):
        return [
            {"span_id": "a", "parent_id": None, "name": "engine.solve",
             "start": 1.0, "dur_ms": 10.0,
             "attrs": {"solver": "subinterval-der"}},
            {"span_id": "b", "parent_id": "a", "name": "solver:subinterval-der",
             "start": 1.001, "dur_ms": 8.0,
             "attrs": {"cpu_ms": 7.5, "fused": True}},
            {"span_id": "c", "parent_id": "missing", "name": "pool.attempt",
             "start": 0.5, "dur_ms": 2.0, "status": "error",
             "attrs": {"outcome": "crashed"}},
        ]

    def test_indentation_order_and_extras(self):
        lines = span_tree_lines(self._spans())
        assert len(lines) == 3
        # orphan starts earlier → prints first at root level
        assert lines[0].startswith("pool.attempt")
        assert "ERROR" in lines[0]
        assert lines[1].startswith("engine.solve")
        assert "subinterval-der" in lines[1]
        # child is indented under its parent, with cpu + fused markers
        assert lines[2].startswith("  solver:subinterval-der")
        assert "cpu 7.50 ms" in lines[2]
        assert "fused" in lines[2]

    def test_empty_capture_renders_nothing(self):
        assert span_tree_lines([]) == []


class TestFormatSolveProfile:
    def _kernel_result(self):
        return SimpleNamespace(
            extras={
                "kernel": "structured",
                "newton_iterations": 12,
                "dense_fallbacks": 0,
                "newton_per_center": (4, 5, 3),
                "factor_time_s": 0.002,
                "polish_iters": 1,
                "warm_started": True,
            }
        )

    def test_all_three_sections_in_one_report(self):
        spans = [
            {"span_id": "e", "parent_id": None, "name": "engine.solve",
             "start": 0.0, "dur_ms": 5.0,
             "attrs": {
                 "solver": "optimal:interior-point",
                 "events": [
                     {"name": "ip.center", "t_ms": 1.0, "gap": 1e-3,
                      "newton": 4},
                     {"name": "ip.center", "t_ms": 2.0, "gap": 1e-6,
                      "newton": 5},
                 ],
             }},
        ]
        text = format_solve_profile(self._kernel_result(), spans)
        assert text.startswith("profile:")
        assert "kernel: structured" in text
        assert "newton per centering step: [4, 5, 3]" in text
        assert "interior-point centering path:" in text
        assert "1.000e-03" in text
        assert "span timings:" in text
        assert "engine.solve" in text

    def test_heuristic_solver_omits_kernel_and_centering(self):
        text = format_solve_profile(SimpleNamespace(extras={}), [])
        assert "no kernel diagnostics" in text
        assert "centering path" not in text
        assert "span timings:" not in text
