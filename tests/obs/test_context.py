"""Span/context core: nesting, capture, carriers, sampling, JSONL export."""

import json
import time

import pytest

from repro.obs import context as obs


class TestSpanBasics:
    def test_nested_spans_share_trace_and_link_parents(self):
        with obs.capture() as spans:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert inner.trace_id == outer.trace_id
        assert spans[0]["parent_id"] == outer.span_id
        assert spans[1]["parent_id"] is None
        assert all(s["dur_ms"] >= 0 for s in spans)

    def test_span_without_capture_is_dropped(self):
        with obs.span("unwatched") as sp:
            pass
        assert sp._done  # finished, just with nowhere to go
        assert obs.emit({"name": "x"}) is False

    def test_active_reflects_parent_or_buffer(self):
        assert obs.active() is False
        with obs.capture():
            assert obs.active() is True
        with obs.span("root"):
            assert obs.active() is True
        assert obs.active() is False

    def test_exception_marks_error_status_and_reraises(self):
        with obs.capture() as spans:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        assert spans[0]["status"] == "error"
        assert spans[0]["attrs"]["exception"] == "ValueError"

    def test_finish_is_idempotent(self):
        with obs.capture() as spans:
            with obs.span("once") as sp:
                pass
            assert sp.finish() is None
        assert len(spans) == 1

    def test_client_supplied_trace_id_pins_the_root(self):
        tid = "ab" * 16
        with obs.capture() as spans:
            with obs.span("root", trace_id=tid):
                with obs.span("child"):
                    pass
        assert all(s["trace_id"] == tid for s in spans)

    def test_events_record_offsets_on_the_current_span(self):
        with obs.capture() as spans:
            with obs.span("solve"):
                assert obs.add_event("ip.center", gap=0.5, newton=3) is True
        events = spans[0]["attrs"]["events"]
        assert events[0]["name"] == "ip.center"
        assert events[0]["gap"] == 0.5
        assert events[0]["t_ms"] >= 0
        assert obs.add_event("orphan") is False


class TestCarrier:
    def test_inject_requires_a_current_span(self):
        assert obs.inject() is None

    def test_inject_activate_round_trip(self):
        with obs.capture() as home:
            with obs.span("request") as root:
                carrier = obs.inject()
        assert carrier["trace_id"] == root.trace_id
        assert carrier["parent"] == root.span_id
        assert carrier["enqueued_at"] <= time.time()

        # "worker side": fresh context, same trace
        with obs.capture() as worker_spans:
            with obs.activate(carrier):
                with obs.span("pool.solve"):
                    pass
        (sp,) = worker_spans
        assert sp["trace_id"] == root.trace_id
        assert sp["parent_id"] == root.span_id
        assert home == [root.to_dict(0) | {"dur_ms": home[0]["dur_ms"]}]

    def test_activate_none_is_a_no_op(self):
        with obs.activate(None):
            assert obs.current_span() is None
            assert obs.active() is False

    def test_manual_span_builds_finished_dict(self):
        t0 = time.time() - 0.05
        sp = obs.manual_span(
            "batch.queue",
            trace_id="ff" * 16,
            parent_id="aa" * 8,
            start=t0,
            status="error",
            outcome="crashed",
        )
        assert sp["name"] == "batch.queue"
        assert sp["status"] == "error"
        assert sp["attrs"]["outcome"] == "crashed"
        assert 40 <= sp["dur_ms"] <= 5000  # ~50ms, generous upper bound
        assert len(sp["span_id"]) == 16


class TestSampling:
    def test_edges(self):
        assert obs.trace_sampled("ab" * 16, 1.0)
        assert not obs.trace_sampled("ab" * 16, 0.0)

    def test_deterministic_per_trace(self):
        ids = [obs.new_trace_id() for _ in range(200)]
        first = [obs.trace_sampled(t, 0.5) for t in ids]
        again = [obs.trace_sampled(t, 0.5) for t in ids]
        assert first == again
        kept = sum(first)
        assert 40 <= kept <= 160  # loose: it's a hash, not an RNG contract

    def test_unparsable_foreign_ids_are_kept(self):
        assert obs.trace_sampled("not-hex!", 0.5)


class TestJsonlExporter:
    def test_export_appends_one_span_per_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with obs.JsonlExporter(path) as ex:
            n = ex.export([{"trace_id": "aa", "name": "x", "dur_ms": 1.0}])
            n += ex.export([{"trace_id": "bb", "name": "y", "dur_ms": 2.0}])
        assert n == 2
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["name"] for ln in lines] == ["x", "y"]

    def test_sampling_drops_whole_traces(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans = [
            {"trace_id": tid, "name": "a"}
            for tid in (obs.new_trace_id() for _ in range(100))
            for _ in range(2)  # two spans per trace
        ]
        with obs.JsonlExporter(path, sample=0.3) as ex:
            ex.export(spans)
            assert ex.exported + ex.dropped == 200
            assert ex.exported % 2 == 0  # traces exported whole or not at all
        kept = {json.loads(ln)["trace_id"] for ln in path.read_text().splitlines()}
        for tid in kept:
            assert obs.trace_sampled(tid, 0.3)

    def test_bad_sample_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            obs.JsonlExporter(tmp_path / "x.jsonl", sample=1.5)
