"""Property tests: serialization round-trips on arbitrary instances."""

import csv
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SubintervalScheduler, Task, TaskSet
from repro.io import (
    schedule_from_json,
    schedule_to_json,
    taskset_from_csv,
    taskset_from_json,
    taskset_to_csv,
    taskset_to_json,
)

from .strategies import power_strategy, tasks_strategy

# Adversarial floats: arbitrary mantissas (0.1+0.2-style non-terminating
# binary fractions) across many orders of magnitude — the regime where the
# old %.12g CSV formatting dropped bits.
_finite = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False
)
# Names that stress CSV quoting (commas, quotes, semicolons) but are
# strip-stable, since the CSV reader trims surrounding whitespace.
_name = st.text(
    alphabet=st.sampled_from('abcXYZ019,;"\'_-'), min_size=0, max_size=8
).filter(lambda s: s == s.strip())


@st.composite
def hard_tasks_strategy(draw, max_size: int = 8) -> TaskSet:
    """Task sets with adversarial float values and CSV-hostile names."""
    n = draw(st.integers(min_value=1, max_value=max_size))
    out = []
    for _ in range(n):
        release = draw(_finite)
        window = draw(_finite)
        deadline = release + window
        if deadline <= release:  # window underflowed at this magnitude
            deadline = release * (1 + 1e-9) + 1e-9
        out.append(Task(release, deadline, draw(_finite), name=draw(_name)))
    return TaskSet(out)


@given(tasks_strategy())
@settings(max_examples=60, deadline=None)
def test_json_roundtrip(tasks):
    assert taskset_from_json(taskset_to_json(tasks)) == tasks


@given(tasks_strategy())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip(tasks):
    out = taskset_from_csv(taskset_to_csv(tasks))
    assert len(out) == len(tasks)
    for a, b in zip(out, tasks):
        assert a.release == pytest.approx(b.release, rel=1e-10)
        assert a.deadline == pytest.approx(b.deadline, rel=1e-10)
        assert a.work == pytest.approx(b.work, rel=1e-10)


@given(hard_tasks_strategy())
@settings(max_examples=100, deadline=None)
def test_csv_roundtrip_bit_exact(tasks):
    """CSV must round-trip *exactly* — values, names, and count."""
    assert taskset_from_csv(taskset_to_csv(tasks)) == tasks


@given(hard_tasks_strategy())
@settings(max_examples=100, deadline=None)
def test_json_csv_chain_roundtrip(tasks):
    """The service parser's full path: TaskSet → JSON → CSV → TaskSet."""
    via_json = taskset_from_json(taskset_to_json(tasks))
    assert taskset_from_csv(taskset_to_csv(via_json)) == tasks


@given(hard_tasks_strategy(), st.permutations(["release", "deadline", "work", "name"]))
@settings(max_examples=60, deadline=None)
def test_csv_column_order_invariance(tasks, order):
    """Loading is header-driven: any column permutation parses identically."""
    rows = list(csv.reader(io.StringIO(taskset_to_csv(tasks))))
    header, body = rows[0], rows[1:]
    perm = [header.index(col) for col in order]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(order)
    for row in body:
        writer.writerow([row[j] for j in perm])
    assert taskset_from_csv(buf.getvalue()) == tasks


@given(tasks_strategy(max_size=6), power_strategy())
@settings(max_examples=20, deadline=None)
def test_schedule_roundtrip_preserves_energy(tasks, power):
    sched = SubintervalScheduler(tasks, 3, power).final("der").schedule
    out = schedule_from_json(schedule_to_json(sched))
    assert out.total_energy() == pytest.approx(sched.total_energy(), rel=1e-12)
    assert len(out) == len(sched)
