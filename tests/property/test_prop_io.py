"""Property tests: serialization round-trips on arbitrary instances."""

import pytest
from hypothesis import given, settings

from repro.core import SubintervalScheduler
from repro.io import (
    schedule_from_json,
    schedule_to_json,
    taskset_from_csv,
    taskset_from_json,
    taskset_to_csv,
    taskset_to_json,
)

from .strategies import power_strategy, tasks_strategy


@given(tasks_strategy())
@settings(max_examples=60, deadline=None)
def test_json_roundtrip(tasks):
    assert taskset_from_json(taskset_to_json(tasks)) == tasks


@given(tasks_strategy())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip(tasks):
    out = taskset_from_csv(taskset_to_csv(tasks))
    assert len(out) == len(tasks)
    for a, b in zip(out, tasks):
        assert a.release == pytest.approx(b.release, rel=1e-10)
        assert a.deadline == pytest.approx(b.deadline, rel=1e-10)
        assert a.work == pytest.approx(b.work, rel=1e-10)


@given(tasks_strategy(max_size=6), power_strategy())
@settings(max_examples=20, deadline=None)
def test_schedule_roundtrip_preserves_energy(tasks, power):
    sched = SubintervalScheduler(tasks, 3, power).final("der").schedule
    out = schedule_from_json(schedule_to_json(sched))
    assert out.total_energy() == pytest.approx(sched.total_energy(), rel=1e-12)
    assert len(out) == len(sched)
