"""Property tests: degenerate-but-valid instances through every solver.

The shared strategies keep boundaries well separated; this module does the
opposite on purpose.  Tasks are drawn from a tiny grid so release times,
deadlines, and whole windows collide constantly — duplicate tasks, shared
boundaries, a deadline equal to another task's release — and every
registered solver must still return finite energy and a validator-clean
schedule (violations are only acceptable alongside reported deadline
misses).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Task, TaskSet, Timeline
from repro.engine import Platform, SolveRequest, solve, solver_names
from repro.optimal import PGConfig
from repro.power import PolynomialPower

# Deliberately tiny grids: with three possible releases and two window
# lengths, any 3+ task draw is all but guaranteed to share boundaries.
_release = st.sampled_from([0.0, 1.0, 2.0])
_window = st.sampled_from([1.0, 2.0])
_work = st.sampled_from([0.5, 1.0, 2.0])


@st.composite
def degenerate_tasks(draw, min_size: int = 1, max_size: int = 4) -> TaskSet:
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    rows = [
        Task(r, r + w, c)
        for r, w, c in (
            (draw(_release), draw(_window), draw(_work)) for _ in range(n)
        )
    ]
    if draw(st.booleans()):
        rows.append(rows[0])  # an exact duplicate task is legal input
    return TaskSet(rows)


def _options(name: str) -> dict:
    if name == "optimal:projected-gradient":
        return {"config": PGConfig(tol=1e-8, patience=5)}
    return {}


@given(degenerate_tasks())
@settings(max_examples=60, deadline=None)
def test_timeline_survives_colliding_boundaries(tasks):
    tl = Timeline(tasks)
    assert np.all(np.diff(tl.boundaries) > 0)  # duplicates collapsed
    assert np.all(tl.lengths > 0)
    assert np.all(np.isfinite(tl.boundaries))
    # every task still covers at least one subinterval
    assert np.all(tl.coverage.sum(axis=1) >= 1)


@given(degenerate_tasks(), st.sampled_from([1, 2, 4]))
@settings(max_examples=15, deadline=None)
def test_every_solver_handles_degenerate_instances(tasks, m):
    request = SolveRequest(
        tasks=tasks,
        platform=Platform(m=m, power=PolynomialPower(alpha=3.0, static=0.1)),
    )
    for name in solver_names():
        result = solve(name, request, **_options(name))
        assert math.isfinite(result.energy), (name, result.energy)
        assert result.energy >= 0.0, name
        if not result.deadline_misses:
            # without misses there is no excuse for invariant violations
            assert result.violations == (), (name, result.violations)
        if result.schedule is not None:
            freqs = [seg.frequency for seg in result.schedule]
            assert all(math.isfinite(f) and f > 0 for f in freqs), name


@given(degenerate_tasks(min_size=2, max_size=4))
@settings(max_examples=20, deadline=None)
def test_identical_instances_solve_identically(tasks):
    """Determinism under degeneracy: same input, bit-identical output."""
    request = SolveRequest(
        tasks=tasks,
        platform=Platform(m=2, power=PolynomialPower(alpha=3.0, static=0.1)),
    )
    a = solve("subinterval-der", request)
    b = solve("subinterval-der", request)
    assert a.energy == b.energy
    assert a.violations == b.violations
