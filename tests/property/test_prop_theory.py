"""Property tests: §V's proven relations hold on arbitrary instances."""

from hypothesis import given, settings

from repro.core import certify_instance
from repro.optimal import solve_optimal

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(max_size=8), cores_strategy, power_strategy())
@settings(max_examples=40, deadline=None)
def test_guaranteed_relations(tasks, m, power):
    report = certify_instance(tasks, m, power)
    assert report.all_guaranteed_hold, report.summary()


@given(tasks_strategy(max_size=6), cores_strategy, power_strategy())
@settings(max_examples=15, deadline=None)
def test_relations_with_exact_optimum(tasks, m, power):
    opt = solve_optimal(tasks, m, power)
    report = certify_instance(tasks, m, power, optimal_energy=opt.energy)
    assert report.all_guaranteed_hold, report.summary()


@given(tasks_strategy(max_size=6), cores_strategy, power_strategy())
@settings(max_examples=15, deadline=None)
def test_ideal_lower_bounds_optimum_without_static_power(tasks, m, power):
    zero = power.with_static(0.0)
    opt = solve_optimal(tasks, m, zero)
    report = certify_instance(tasks, m, zero, optimal_energy=opt.energy)
    assert report.ideal_below_optimal is True
