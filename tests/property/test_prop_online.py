"""Property tests: the online scheduler on arbitrary instances."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import OnlineSubintervalScheduler, SubintervalScheduler
from repro.sim import assert_valid

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=30, deadline=None)
def test_online_always_valid(tasks, m, power):
    res = OnlineSubintervalScheduler(tasks, m, power).run()
    assert_valid(res.schedule, tol=1e-6)


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=30, deadline=None)
def test_online_work_conserved(tasks, m, power):
    res = OnlineSubintervalScheduler(tasks, m, power).run()
    np.testing.assert_allclose(
        res.schedule.work_completed(), tasks.works, rtol=1e-6, atol=1e-9
    )


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=30, deadline=None)
def test_online_replan_count_bounded_by_releases(tasks, m, power):
    res = OnlineSubintervalScheduler(tasks, m, power).run()
    assert 1 <= res.replans <= len(np.unique(tasks.releases))


@given(tasks_strategy(max_size=6), power_strategy())
@settings(max_examples=20, deadline=None)
def test_online_equals_offline_for_simultaneous_releases(tasks, power):
    """If every task releases at the same instant, online IS offline."""
    from repro.core import Task, TaskSet

    sync = TaskSet(Task(0.0, t.window, t.work) for t in tasks)
    on = OnlineSubintervalScheduler(sync, 3, power).run()
    off = SubintervalScheduler(sync, 3, power).final("der")
    assert on.energy == pytest.approx(off.energy, rel=1e-9)
