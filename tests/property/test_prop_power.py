"""Property tests: power-model algebra and quantization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import DiscreteFrequencySet, PolynomialPower
from repro.power.fitting import fit_linear_given_alpha
from repro.optimal.projected_gradient import project_capped_box

from .strategies import power_strategy

_freqs = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


@given(power_strategy(), _freqs)
@settings(max_examples=100, deadline=None)
def test_critical_frequency_is_global_min_of_energy_per_work(power, f):
    fc = power.critical_frequency()
    if fc == 0.0:
        return  # no static power: slower is always better
    assert power.energy_per_work(f) >= power.energy_per_work(fc) - 1e-12


@given(power_strategy(), _freqs, st.floats(min_value=0.01, max_value=50))
@settings(max_examples=100, deadline=None)
def test_energy_decomposes_over_work(power, f, work):
    half = power.energy(work / 2, f)
    assert np.isclose(power.energy(work, f), 2 * half, rtol=1e-12)


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=6, unique=True
    ),
    st.floats(min_value=0.05, max_value=120.0),
)
@settings(max_examples=100, deadline=None)
def test_quantize_up_is_tightest_feasible_point(freqs, planned):
    freqs = sorted(freqs)
    fset = DiscreteFrequencySet(
        np.array(freqs), np.array([f**2 for f in freqs])
    )
    q = fset.quantize_up(planned)
    if planned > fset.f_max * (1 + 1e-9):
        assert not q.feasible[0]
    else:
        chosen = q.frequencies[0]
        assert chosen >= planned * (1 - 1e-9)
        lower = [f for f in freqs if f < chosen - 1e-12]
        assert all(f < planned * (1 - 1e-12) for f in lower)


@given(
    st.integers(min_value=2, max_value=6),
    st.floats(min_value=2.0, max_value=3.5),
    st.floats(min_value=1e-6, max_value=10.0),
    st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_fit_linear_recovers_exact_data(n, alpha, gamma, p0):
    freqs = np.linspace(1.0, 5.0, n + 1)
    powers = gamma * freqs**alpha + p0
    g, p, sse = fit_linear_given_alpha(freqs, powers, alpha)
    assert np.isclose(g, gamma, rtol=1e-6)
    assert np.isclose(p, p0, rtol=1e-6, atol=1e-9)
    assert sse < 1e-12 * max(powers.max() ** 2, 1.0)


@given(
    st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=8),
    st.lists(st.floats(min_value=0.1, max_value=3), min_size=8, max_size=8),
    st.floats(min_value=0.1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_projection_always_feasible(y, u, cap):
    y = np.array(y)
    u = np.array(u[: len(y)])
    out = project_capped_box(y, u, cap)
    assert np.all(out >= -1e-9)
    assert np.all(out <= u + 1e-9)
    assert out.sum() <= cap + 1e-6
