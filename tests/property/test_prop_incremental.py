"""Property tests: the incremental session always equals a batch rebuild.

Randomized arrival / completion / advance streams are replayed through a
:class:`~repro.core.incremental.ScheduleSession`; after every delta the
session's plan must match a fresh :class:`SubintervalScheduler` built over
the session's current rows — bit-for-bit on boundaries, coverage and the
allocation matrix, and exactly on final energy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScheduleSession, SubintervalScheduler, Task
from repro.sim import assert_valid

from .strategies import cores_strategy, power_strategy, tasks_strategy

method_strategy = st.sampled_from(["even", "der"])


def _assert_session_matches_batch(session):
    batch = SubintervalScheduler(session.taskset(), session.m, session.power)
    plan = batch.plan(session.method)
    np.testing.assert_array_equal(plan.timeline.boundaries, session.boundaries)
    np.testing.assert_array_equal(plan.timeline.coverage, session._cov)
    np.testing.assert_array_equal(plan.x, session._x)
    assert session.energy == batch.final(session.method).energy


@given(tasks_strategy(min_size=2, max_size=8), cores_strategy, power_strategy(), method_strategy)
@settings(max_examples=40, deadline=None)
def test_arrival_stream_matches_batch(tasks, m, power, method):
    """Adding tasks one by one is the same as planning them all at once."""
    session = ScheduleSession(m, power, method=method)
    for task in tasks:
        session.add_task(task)
        _assert_session_matches_batch(session)


@given(
    tasks_strategy(min_size=3, max_size=8),
    cores_strategy,
    power_strategy(),
    method_strategy,
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_mixed_stream_matches_batch(tasks, m, power, method, rnd):
    """Interleaved arrivals and removals stay equal to the batch plan."""
    session = ScheduleSession(m, power, method=method)
    live = []
    for task in tasks:
        live.append(session.add_task(task))
        if len(live) > 1 and rnd.random() < 0.4:
            victim = live.pop(rnd.randrange(len(live)))
            if rnd.random() < 0.5:
                session.complete_task(victim)
            else:
                session.remove_task(victim)
        if not session.is_empty:
            _assert_session_matches_batch(session)


@given(tasks_strategy(min_size=2, max_size=6), cores_strategy, power_strategy(), method_strategy)
@settings(max_examples=30, deadline=None)
def test_advance_matches_batch(tasks, m, power, method):
    """Re-anchoring at a mid-stream instant equals a batch plan over the
    re-anchored rows."""
    session = ScheduleSession(m, power, method=method)
    for task in tasks:
        session.add_task(task)
    # pick an instant strictly before every deadline
    earliest_deadline = float(np.min(session.taskset().deadlines))
    t = earliest_deadline - 0.25
    if t <= float(np.min(session.taskset().releases)):
        return
    session.advance_to(t)
    _assert_session_matches_batch(session)


@given(tasks_strategy(min_size=1, max_size=8), cores_strategy, power_strategy(), method_strategy)
@settings(max_examples=30, deadline=None)
def test_session_result_is_valid(tasks, m, power, method):
    """The materialized schedule is feasible and completes all work."""
    session = ScheduleSession(m, power, method=method, tasks=tasks)
    res = session.result()
    assert_valid(res.schedule, tol=1e-6)
    batch = session.batch_oracle().final(method)
    assert res.energy == batch.energy
    assert list(res.schedule) == list(batch.schedule)


@given(tasks_strategy(min_size=2, max_size=8), cores_strategy, power_strategy(), method_strategy)
@settings(max_examples=30, deadline=None)
def test_rebuilt_session_forgets_history(tasks, m, power, method):
    """A session that added-then-removed extra tasks equals one that never
    saw them (no numerical residue from the splices)."""
    session = ScheduleSession(m, power, method=method)
    keep = [session.add_task(t) for t in tasks]
    ghost = session.add_task(Task(0.0, float(np.max(tasks.deadlines)), 0.5))
    session.remove_task(ghost)
    fresh = ScheduleSession(m, power, method=method, tasks=tasks)
    np.testing.assert_array_equal(session.boundaries, fresh.boundaries)
    np.testing.assert_array_equal(session._x, fresh._x)
    assert session.energy == fresh.energy
    assert len(keep) == len(tasks)
