"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import Task, TaskSet
from repro.power import PolynomialPower

# Times/works drawn on coarse grids: keeps instances numerically benign
# (well-separated boundaries) while still exploring the combinatorics.

_release = st.integers(min_value=0, max_value=40).map(lambda k: k * 0.5)
_window = st.integers(min_value=1, max_value=40).map(lambda k: k * 0.5)
_work = st.integers(min_value=1, max_value=60).map(lambda k: k * 0.25)


@st.composite
def tasks_strategy(draw, min_size: int = 1, max_size: int = 10) -> TaskSet:
    """Random small task sets with grid-aligned times."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    out = []
    for _ in range(n):
        r = draw(_release)
        w = draw(_window)
        c = draw(_work)
        out.append(Task(r, r + w, c))
    return TaskSet(out)


@st.composite
def power_strategy(draw) -> PolynomialPower:
    """Random power models in the paper's parameter ranges."""
    alpha = draw(st.sampled_from([2.0, 2.25, 2.5, 2.75, 3.0]))
    static = draw(st.sampled_from([0.0, 0.01, 0.05, 0.1, 0.2, 0.5]))
    return PolynomialPower(alpha=alpha, static=static)


cores_strategy = st.integers(min_value=1, max_value=6)
