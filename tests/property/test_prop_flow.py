"""Property tests: flow realization against the scheduling polytope."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SubintervalScheduler, Timeline
from repro.core.wrap_schedule import wrap_schedule
from repro.optimal import realize_demands
from repro.power import PolynomialPower

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(max_size=7), cores_strategy, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_scaled_even_plan_demands_always_feasible(tasks, m, scale):
    """Any allocation plan's row sums are feasible demands (and so is any
    downscaling of them)."""
    sch = SubintervalScheduler(tasks, m, PolynomialPower(3.0, 0.1))
    demands = sch.plan("even").available_times * scale
    real = realize_demands(tasks, m, demands)
    assert real.feasible
    np.testing.assert_allclose(real.x.sum(axis=1), demands, rtol=1e-7, atol=1e-9)


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=30, deadline=None)
def test_realized_x_within_polytope_and_packable(tasks, m, power):
    sch = SubintervalScheduler(tasks, m, power)
    demands = sch.plan("der").available_times
    real = realize_demands(tasks, m, demands)
    assert real.feasible
    tl = Timeline(tasks)
    assert np.all(real.x <= tl.lengths[None, :] * (1 + 1e-9))
    assert np.all(real.x.sum(axis=0) <= m * tl.lengths * (1 + 1e-9))
    # uncovered pairs carry no flow
    assert np.all(real.x[~tl.coverage] == 0.0)
    # Algorithm 1 accepts every subinterval's realization
    for sub in tl:
        alloc = {tid: float(real.x[tid, sub.index]) for tid in sub.task_ids}
        wrap_schedule(sub.start, sub.end, alloc, m)


@given(tasks_strategy(max_size=6), cores_strategy)
@settings(max_examples=30, deadline=None)
def test_infeasible_iff_shortfall(tasks, m):
    """Demanding every task's full window: feasibility must agree with the
    reported shortfall."""
    real = realize_demands(tasks, m, tasks.windows)
    assert real.feasible == bool(np.all(real.shortfall < 1e-7))
    if not real.feasible:
        assert real.bottleneck_subintervals  # a congested region is named
