"""Property tests: the optimal solver against structural guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import SubintervalScheduler
from repro.optimal import solve_optimal

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=25, deadline=None)
def test_optimal_lower_bounds_heuristics(tasks, m, power):
    opt = solve_optimal(tasks, m, power)
    sch = SubintervalScheduler(tasks, m, power)
    for res in sch.run_all().values():
        assert opt.energy <= res.energy * (1 + 1e-6)


@given(tasks_strategy(max_size=7), cores_strategy, power_strategy())
@settings(max_examples=25, deadline=None)
def test_optimal_solution_feasible(tasks, m, power):
    opt = solve_optimal(tasks, m, power)
    opt.problem.check_feasible(opt.x, tol=1e-6)
    assert np.all(opt.available_times > 0)


@given(tasks_strategy(max_size=7), power_strategy())
@settings(max_examples=25, deadline=None)
def test_optimal_never_below_critical_frequency(tasks, power):
    """At the optimum no task runs below f_crit (static power would be
    wasted) — the KKT structure the closed forms rely on."""
    opt = solve_optimal(tasks, 2, power)
    f_crit = power.critical_frequency()
    assert np.all(opt.frequencies >= f_crit * (1 - 1e-4))


@given(tasks_strategy(max_size=7), power_strategy())
@settings(max_examples=20, deadline=None)
def test_optimal_matches_ideal_with_enough_cores(tasks, power):
    sch = SubintervalScheduler(tasks, len(tasks), power)
    opt = solve_optimal(tasks, len(tasks), power)
    assert opt.energy == pytest.approx(sch.ideal_energy, rel=1e-5)


@given(tasks_strategy(max_size=6), power_strategy())
@settings(max_examples=15, deadline=None)
def test_monotone_in_cores(tasks, power):
    e2 = solve_optimal(tasks, 2, power).energy
    e4 = solve_optimal(tasks, 4, power).energy
    assert e4 <= e2 * (1 + 1e-6)
