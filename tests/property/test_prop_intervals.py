"""Property tests: subinterval decomposition invariants."""

import numpy as np
from hypothesis import given, settings

from repro.core import Timeline

from .strategies import cores_strategy, tasks_strategy


@given(tasks_strategy())
@settings(max_examples=80, deadline=None)
def test_subintervals_partition_horizon(tasks):
    tl = Timeline(tasks)
    lo, hi = tasks.horizon
    assert tl.boundaries[0] == lo
    assert tl.boundaries[-1] == hi
    assert np.all(np.diff(tl.boundaries) > 0)
    assert np.isclose(tl.lengths.sum(), hi - lo)


@given(tasks_strategy())
@settings(max_examples=80, deadline=None)
def test_every_task_covers_at_least_one_subinterval(tasks):
    tl = Timeline(tasks)
    assert np.all(tl.coverage.sum(axis=1) >= 1)


@given(tasks_strategy())
@settings(max_examples=80, deadline=None)
def test_coverage_matches_window_containment(tasks):
    tl = Timeline(tasks)
    for sub in tl:
        for i in range(len(tasks)):
            inside = (
                tasks.releases[i] <= sub.start and tasks.deadlines[i] >= sub.end
            )
            assert tl.coverage[i, sub.index] == inside


@given(tasks_strategy())
@settings(max_examples=80, deadline=None)
def test_window_length_equals_sum_of_covered_subintervals(tasks):
    tl = Timeline(tasks)
    covered_len = tl.coverage @ tl.lengths
    np.testing.assert_allclose(covered_len, tasks.windows)


@given(tasks_strategy(), cores_strategy)
@settings(max_examples=80, deadline=None)
def test_heavy_light_is_a_partition(tasks, m):
    tl = Timeline(tasks)
    heavy = {s.index for s in tl.heavy(m)}
    light = {s.index for s in tl.light(m)}
    assert heavy | light == set(range(len(tl)))
    assert heavy & light == set()


@given(tasks_strategy())
@settings(max_examples=50, deadline=None)
def test_locate_is_consistent(tasks):
    tl = Timeline(tasks)
    for sub in tl:
        mid = 0.5 * (sub.start + sub.end)
        assert tl.locate(mid) == sub.index
