"""Property tests: admission control consistency with the flow substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionController, Task
from repro.power import PolynomialPower

from .strategies import cores_strategy, tasks_strategy

_POWER = PolynomialPower(alpha=3.0, static=0.05)


@given(tasks_strategy(max_size=8), cores_strategy)
@settings(max_examples=30, deadline=None)
def test_committed_set_is_always_schedulable(tasks, m):
    """Whatever subset the controller admits must pass its own exact test."""
    ctl = AdmissionController(m, _POWER, f_max=1.0)
    ctl.admit_all(tasks)
    committed = ctl.committed
    if committed is not None:
        assert ctl.is_schedulable(committed)


@given(tasks_strategy(max_size=8), cores_strategy)
@settings(max_examples=30, deadline=None)
def test_uncapped_controller_admits_everything(tasks, m):
    ctl = AdmissionController(m, _POWER, f_max=None)
    decisions = ctl.admit_all(tasks)
    assert all(d.accepted for d in decisions)
    assert len(ctl.committed) == len(tasks)


@given(tasks_strategy(max_size=6), cores_strategy, st.floats(min_value=0.5, max_value=4.0))
@settings(max_examples=30, deadline=None)
def test_schedulability_monotone_in_cap(tasks, m, f_max):
    """A fixed set schedulable at f_max stays schedulable at any higher cap
    (demands C_i/f shrink, and the feasible polytope is downward closed)."""
    low = AdmissionController(m, _POWER, f_max=f_max)
    high = AdmissionController(m, _POWER, f_max=f_max * 2)
    if low.is_schedulable(tasks):
        assert high.is_schedulable(tasks)


@given(tasks_strategy(max_size=6), cores_strategy)
@settings(max_examples=30, deadline=None)
def test_marginal_energies_telescope(tasks, m):
    ctl = AdmissionController(m, _POWER, f_max=None)
    decisions = ctl.admit_all(tasks)
    total = sum(d.marginal_energy for d in decisions if d.accepted)
    assert np.isclose(total, ctl.current_energy, rtol=1e-9)
