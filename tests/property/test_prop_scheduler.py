"""Property tests: the full pipeline on arbitrary instances.

These are the paper's structural guarantees, checked on hypothesis-generated
task sets: every produced schedule is collision-free, meets all execution
requirements inside windows, and obeys the documented energy orderings.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import SubintervalScheduler
from repro.sim import assert_valid, execute_schedule

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(max_size=8), cores_strategy, power_strategy())
@settings(max_examples=40, deadline=None)
def test_final_schedules_always_valid(tasks, m, power):
    sch = SubintervalScheduler(tasks, m, power)
    for method in ("even", "der"):
        res = sch.final(method)
        assert_valid(res.schedule, tol=1e-6)


@given(tasks_strategy(max_size=8), cores_strategy, power_strategy())
@settings(max_examples=40, deadline=None)
def test_intermediate_schedules_always_valid(tasks, m, power):
    sch = SubintervalScheduler(tasks, m, power)
    for method in ("even", "der"):
        res = sch.intermediate(method)
        assert_valid(res.schedule, tol=1e-6)


@given(tasks_strategy(max_size=8), cores_strategy, power_strategy())
@settings(max_examples=40, deadline=None)
def test_refinement_never_hurts(tasks, m, power):
    """E^F1 <= E^I1 and E^F2 <= E^I2 (paper §V)."""
    sch = SubintervalScheduler(tasks, m, power)
    assert sch.final("even").energy <= sch.intermediate("even").energy * (1 + 1e-9)
    assert sch.final("der").energy <= sch.intermediate("der").energy * (1 + 1e-9)


@given(tasks_strategy(max_size=8), cores_strategy, power_strategy())
@settings(max_examples=40, deadline=None)
def test_ideal_lower_bounds_intermediates_at_zero_static(tasks, m, power):
    """With p0 = 0 the ideal (unlimited cores) lower-bounds everything."""
    if power.static != 0.0:
        power = power.with_static(0.0)
    sch = SubintervalScheduler(tasks, m, power)
    ideal = sch.ideal_energy
    for res in sch.run_all().values():
        assert res.energy >= ideal * (1 - 1e-9)


@given(tasks_strategy(max_size=6), cores_strategy, power_strategy())
@settings(max_examples=25, deadline=None)
def test_analytic_equals_replayed_energy(tasks, m, power):
    sch = SubintervalScheduler(tasks, m, power)
    for res in sch.run_all().values():
        rep = execute_schedule(res.schedule)
        assert rep.total_energy == pytest.approx(res.energy, rel=1e-7)
        assert rep.all_deadlines_met


@given(tasks_strategy(max_size=8), power_strategy())
@settings(max_examples=30, deadline=None)
def test_enough_cores_reaches_ideal(tasks, power):
    """With m >= n every subinterval is light: final == ideal."""
    sch = SubintervalScheduler(tasks, len(tasks), power)
    assert sch.final("der").energy == pytest.approx(sch.ideal_energy, rel=1e-9)
    assert sch.final("even").energy == pytest.approx(sch.ideal_energy, rel=1e-9)
