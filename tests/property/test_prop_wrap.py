"""Property tests: Algorithm 1 produces collision-free exact packings."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import wrap_schedule


@st.composite
def packing_instance(draw):
    m = draw(st.integers(min_value=1, max_value=5))
    delta = draw(st.integers(min_value=1, max_value=20)) * 0.5
    n = draw(st.integers(min_value=1, max_value=12))
    # fractions of delta in [0, 1], scaled so total <= m * delta
    fracs = [
        draw(st.integers(min_value=0, max_value=100)) / 100.0 for _ in range(n)
    ]
    total = sum(fracs)
    cap = m  # total fraction allowed
    if total > cap:
        fracs = [f * cap / total for f in fracs]
    allocs = {i: f * delta for i, f in enumerate(fracs)}
    start = draw(st.integers(min_value=0, max_value=10)) * 1.0
    return start, start + delta, allocs, m


@given(packing_instance())
@settings(max_examples=120, deadline=None)
def test_wrap_schedule_invariants(instance):
    start, end, allocs, m = instance
    slots = wrap_schedule(start, end, allocs, m)

    # 1. all slots inside the subinterval
    for s in slots:
        assert s.start >= start - 1e-9
        assert s.end <= end + 1e-9
        assert s.core < m

    # 2. exact durations per task
    per_task = {}
    for s in slots:
        per_task[s.task_id] = per_task.get(s.task_id, 0.0) + s.duration
    for tid, t in allocs.items():
        assert abs(per_task.get(tid, 0.0) - t) < 1e-7

    # 3. no core conflicts
    by_core = {}
    for s in slots:
        by_core.setdefault(s.core, []).append(s)
    for segs in by_core.values():
        segs.sort(key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            assert b.start >= a.end - 1e-9

    # 4. no intra-task parallelism
    by_task = {}
    for s in slots:
        by_task.setdefault(s.task_id, []).append(s)
    for segs in by_task.values():
        segs.sort(key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            assert b.start >= a.end - 1e-9

    # 5. at most one wrap (two slots) per task
    for segs in by_task.values():
        assert len(segs) <= 2
