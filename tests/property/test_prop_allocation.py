"""Property tests: allocation plans always satisfy their constraints."""

import numpy as np
from hypothesis import given, settings

from repro.core import Timeline, build_allocation_plan, solve_ideal

from .strategies import cores_strategy, power_strategy, tasks_strategy


@given(tasks_strategy(), cores_strategy, power_strategy())
@settings(max_examples=60, deadline=None)
def test_der_plan_feasible(tasks, m, power):
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, power)
    plan = build_allocation_plan(tl, m, "der", ideal=ideal)
    plan.check()  # raises on violation
    # light subintervals grant the full length
    for sub in tl.light(m):
        for tid in sub.task_ids:
            assert plan.x[tid, sub.index] == sub.length


@given(tasks_strategy(), cores_strategy)
@settings(max_examples=60, deadline=None)
def test_even_plan_feasible(tasks, m):
    tl = Timeline(tasks)
    plan = build_allocation_plan(tl, m, "even")
    plan.check()
    for sub in tl.heavy(m):
        vals = plan.x[list(sub.task_ids), sub.index]
        np.testing.assert_allclose(vals, m * sub.length / sub.n_overlapping)


@given(tasks_strategy(), cores_strategy, power_strategy())
@settings(max_examples=60, deadline=None)
def test_der_allocates_whenever_ideal_works(tasks, m, power):
    """No starvation: if the ideal schedule executes a task in a heavy
    subinterval, the DER plan gives that task positive time there."""
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, power)
    plan = build_allocation_plan(tl, m, "der", ideal=ideal)
    o = ideal.subinterval_times(tl)
    for sub in tl.heavy(m):
        for tid in sub.task_ids:
            if o[tid, sub.index] > 1e-9:
                assert plan.x[tid, sub.index] > 0.0


@given(tasks_strategy(), cores_strategy, power_strategy())
@settings(max_examples=60, deadline=None)
def test_available_time_supports_work(tasks, m, power):
    """Every task's available time is positive (so a frequency exists)."""
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, power)
    for method, kw in (("even", {}), ("der", {"ideal": ideal})):
        plan = build_allocation_plan(tl, m, method, **kw)
        assert np.all(plan.available_times > 0)


@given(tasks_strategy(max_size=14), cores_strategy, power_strategy())
@settings(max_examples=80, deadline=None)
def test_vectorized_matches_scalar_reference(tasks, m, power):
    """The batched assembly agrees with the per-subinterval loop to 1e-9."""
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, power)
    for method, kw in (("even", {}), ("der", {"ideal": ideal})):
        vec = build_allocation_plan(tl, m, method, **kw)
        ref = build_allocation_plan(tl, m, method + "_scalar", **kw)
        np.testing.assert_allclose(vec.x, ref.x, rtol=1e-9, atol=1e-12)


@given(tasks_strategy(), cores_strategy, power_strategy())
@settings(max_examples=60, deadline=None)
def test_no_overlapped_subinterval_starved(tasks, m, power):
    """Every subinterval with overlapping tasks hands out some capacity."""
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, power)
    for method, kw in (("even", {}), ("der", {"ideal": ideal})):
        plan = build_allocation_plan(tl, m, method, **kw)
        totals = plan.x.sum(axis=0)
        assert np.all(totals[tl.overlap_counts > 0] > 0)
