"""Property tests: the discrete-frequency (deployable) scheduler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PracticalScheduler
from repro.power import DiscreteFrequencySet, PolynomialPower
from repro.sim import ViolationKind, execute_schedule, validate_schedule

from .strategies import cores_strategy, tasks_strategy


@st.composite
def fset_strategy(draw) -> DiscreteFrequencySet:
    """Random small operating-point menus with a cube-ish fitted curve."""
    n_points = draw(st.integers(min_value=2, max_value=5))
    raw = draw(
        st.lists(
            st.floats(min_value=0.2, max_value=4.0),
            min_size=n_points,
            max_size=n_points,
            unique=True,
        )
    )
    freqs = np.array(sorted(raw))
    fit = PolynomialPower(alpha=3.0, static=0.1)
    powers = np.asarray(fit.power(freqs))
    return DiscreteFrequencySet(freqs, powers, continuous_fit=fit)


@given(tasks_strategy(max_size=6), cores_strategy, fset_strategy())
@settings(max_examples=40, deadline=None)
def test_practical_schedule_physically_sound(tasks, m, fset):
    res = PracticalScheduler(tasks, m, fset).schedule("der")
    # frequencies are always menu points
    for seg in res.schedule:
        assert any(abs(seg.frequency - f) < 1e-9 for f in fset.frequencies)
    # no structural violations ever; work mismatch only on reported misses
    issues = validate_schedule(res.schedule, tol=1e-6)
    kinds = {v.kind for v in issues}
    assert ViolationKind.CORE_CONFLICT not in kinds
    assert ViolationKind.TASK_PARALLEL not in kinds
    assert ViolationKind.OUTSIDE_WINDOW not in kinds
    if res.all_deadlines_met:
        assert ViolationKind.WORK_MISMATCH not in kinds


@given(tasks_strategy(max_size=6), cores_strategy, fset_strategy())
@settings(max_examples=30, deadline=None)
def test_practical_replay_matches_energy(tasks, m, fset):
    res = PracticalScheduler(tasks, m, fset).schedule("der")
    rep = execute_schedule(res.schedule)
    assert np.isclose(rep.total_energy, res.energy, rtol=1e-9)


@given(tasks_strategy(max_size=6), cores_strategy, fset_strategy())
@settings(max_examples=30, deadline=None)
def test_misses_exactly_when_plan_exceeds_fmax(tasks, m, fset):
    res = PracticalScheduler(tasks, m, fset).schedule("der")
    over = set(
        int(i)
        for i in np.flatnonzero(
            res.planned_frequencies > fset.f_max * (1 + 1e-9)
        )
    )
    assert set(res.missed_tasks) == over
