"""Property tests: YDS validity and optimality on arbitrary instances."""

import pytest
from hypothesis import given, settings

from repro.baselines import yds_schedule
from repro.optimal import solve_optimal
from repro.power import PolynomialPower
from repro.sim import assert_valid, execute_schedule

from .strategies import tasks_strategy

_CUBE = PolynomialPower(alpha=3.0, static=0.0)


@given(tasks_strategy(max_size=7))
@settings(max_examples=40, deadline=None)
def test_yds_schedule_always_valid(tasks):
    res = yds_schedule(tasks, _CUBE)
    assert_valid(res.schedule, tol=1e-6)


@given(tasks_strategy(max_size=7))
@settings(max_examples=40, deadline=None)
def test_yds_meets_all_deadlines(tasks):
    res = yds_schedule(tasks, _CUBE)
    rep = execute_schedule(res.schedule)
    assert rep.all_deadlines_met


@given(tasks_strategy(max_size=6))
@settings(max_examples=20, deadline=None)
def test_yds_is_optimal_without_static_power(tasks):
    res = yds_schedule(tasks, _CUBE)
    opt = solve_optimal(tasks, 1, _CUBE)
    assert res.energy == pytest.approx(opt.energy, rel=1e-4)


@given(tasks_strategy(max_size=7))
@settings(max_examples=30, deadline=None)
def test_yds_speeds_monotone_nonincreasing(tasks):
    """YDS peels critical intervals in nonincreasing intensity order."""
    res = yds_schedule(tasks, _CUBE)
    speeds = [ci.speed for ci in res.critical_intervals]
    for a, b in zip(speeds, speeds[1:]):
        assert b <= a + 1e-9
