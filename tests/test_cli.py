"""Tests for the command-line interface (in-process, no subprocesses)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_schedule, load_taskset


@pytest.fixture
def task_file(tmp_path):
    path = tmp_path / "tasks.json"
    assert main(["generate", str(path), "-n", "8", "--seed", "5"]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["schedule", "t.json"])
        assert args.cores == 4
        assert args.method == "der"
        assert args.alpha == 3.0

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8421
        assert args.workers == 0
        assert args.batch_window_ms == 5.0
        assert args.batch_max == 32
        assert args.cache_size == 256
        assert args.max_inflight == 256
        assert args.f_max is None

    def test_serve_flags_round_trip(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0", "--workers", "4",
             "--batch-window-ms", "2.5", "--batch-max", "64",
             "--cache-size", "1024", "--max-inflight", "100",
             "--timeout", "5", "-m", "8", "--alpha", "2.5", "--static", "0.1",
             "--f-max", "2.0", "--log-interval", "0"]
        )
        assert (args.host, args.port, args.workers) == ("0.0.0.0", 0, 4)
        assert args.batch_window_ms == 2.5
        assert args.batch_max == 64
        assert args.cache_size == 1024
        assert args.max_inflight == 100
        assert args.timeout == 5.0
        assert (args.cores, args.alpha, args.static) == (8, 2.5, 0.1)
        assert args.f_max == 2.0
        assert args.log_interval == 0.0

    def test_serve_args_build_a_valid_config(self):
        from repro.service import ServiceConfig

        args = build_parser().parse_args(["serve", "--batch-window-ms", "0"])
        config = ServiceConfig(
            host=args.host, port=args.port, workers=args.workers,
            batch_window=args.batch_window_ms / 1e3, batch_max=args.batch_max,
            cache_size=args.cache_size, max_inflight=args.max_inflight,
            request_timeout=args.timeout, m=args.cores, alpha=args.alpha,
            static=args.static, f_max=args.f_max, log_interval=args.log_interval,
        )
        assert config.batch_window == 0.0

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 500
        assert args.concurrency == 16
        assert args.unique == 50
        assert args.optimal_frac == 0.0
        assert args.include_schedule is False

    def test_loadgen_flags_round_trip(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "9000", "-n", "100", "-c", "8",
             "--n-tasks", "12", "--unique", "10", "--optimal-frac", "0.2",
             "--admit-frac", "0.1", "--method", "even",
             "--include-schedule", "--seed", "7", "--json"]
        )
        assert (args.port, args.requests, args.concurrency) == (9000, 100, 8)
        assert (args.n_tasks, args.unique) == (12, 10)
        assert (args.optimal_frac, args.admit_frac) == (0.2, 0.1)
        assert args.method == "even"
        assert args.include_schedule is True
        assert args.seed == 7
        assert args.json is True

    def test_loadgen_rejects_bad_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--method", "magic"])

    def test_serve_robustness_flags_round_trip(self):
        args = build_parser().parse_args(
            ["serve", "--solver-timeout", "2.5", "--degrade-to", "even",
             "--retry-max", "3", "--retry-backoff", "0.2",
             "--chaos", "kill=0.1,seed=7"]
        )
        assert args.solver_timeout == 2.5
        assert args.degrade_to == "even"
        assert args.retry_max == 3
        assert args.retry_backoff == 0.2
        assert args.chaos == "kill=0.1,seed=7"

    def test_serve_robustness_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.solver_timeout == 10.0
        assert args.degrade_to == "subinterval-der"
        assert args.retry_max == 1
        assert args.chaos == ""

    def test_loadgen_chaos_flag(self):
        args = build_parser().parse_args(
            ["loadgen", "--chaos", "malform=0.2,seed=3"]
        )
        assert args.chaos == "malform=0.2,seed=3"
        assert build_parser().parse_args(["loadgen"]).chaos == ""


class TestGenerate:
    def test_writes_valid_taskset(self, task_file):
        tasks = load_taskset(task_file)
        assert len(tasks) == 8

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["generate", str(a), "--seed", "9"])
        main(["generate", str(b), "--seed", "9"])
        assert load_taskset(a) == load_taskset(b)

    def test_csv_output(self, tmp_path):
        path = tmp_path / "tasks.csv"
        assert main(["generate", str(path), "-n", "5"]) == 0
        assert len(load_taskset(path)) == 5

    def test_xscale_generator(self, tmp_path):
        path = tmp_path / "x.json"
        assert main(["generate", str(path), "--xscale", "-n", "6"]) == 0
        tasks = load_taskset(path)
        assert all(t.work >= 4000 for t in tasks)


class TestSchedule:
    def test_schedules_and_saves(self, task_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        code = main(
            ["schedule", str(task_file), "--static", "0.1", "-o", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "S^F2" in captured
        assert "validation: OK" in captured
        sched = load_schedule(out)
        assert sched.completes_all(rtol=1e-6)

    def test_even_method(self, task_file, capsys):
        assert main(["schedule", str(task_file), "--method", "even"]) == 0
        assert "S^F1" in capsys.readouterr().out

    def test_online_method(self, task_file, capsys):
        assert main(["schedule", str(task_file), "--method", "online"]) == 0
        assert "re-plans" in capsys.readouterr().out

    def test_gantt_flag(self, task_file, capsys):
        main(["schedule", str(task_file), "--gantt"])
        assert "M1 |" in capsys.readouterr().out

    def test_svg_output(self, task_file, tmp_path):
        svg = tmp_path / "sched.svg"
        main(["schedule", str(task_file), "--svg", str(svg)])
        assert svg.read_text().startswith("<svg")


class TestOptimal:
    def test_reports_energy(self, task_file, capsys):
        assert main(["optimal", str(task_file), "--static", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "optimal energy" in out
        assert "interior-point" in out

    def test_alternate_solver(self, task_file, capsys):
        assert (
            main(["optimal", str(task_file), "--solver", "projected-gradient"]) == 0
        )
        assert "projected-gradient" in capsys.readouterr().out

    def test_optimal_not_above_heuristic(self, task_file, capsys):
        main(["schedule", str(task_file), "--static", "0.1"])
        sched_out = capsys.readouterr().out
        e_sched = float(
            next(l for l in sched_out.splitlines() if l.startswith("energy:")).split()[1]
        )
        main(["optimal", str(task_file), "--static", "0.1"])
        opt_out = capsys.readouterr().out
        e_opt = float(
            next(
                l for l in opt_out.splitlines() if l.startswith("optimal energy:")
            ).split()[2]
        )
        assert e_opt <= e_sched * (1 + 1e-6)


class TestSolveErrorPaths:
    def test_unknown_solver_exits_2_with_menu(self, task_file, capsys):
        assert main(["solve", str(task_file), "--solver", "magic"]) == 2
        out, err = capsys.readouterr()
        assert "unknown solver 'magic'" in out
        assert "subinterval-der" in out  # the menu names real solvers
        assert "repro solve --list" in out
        assert "Traceback" not in out + err

    def test_missing_task_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["solve", str(missing)]) == 2
        out, err = capsys.readouterr()
        assert "does not exist" in out
        assert "Traceback" not in out + err

    def test_list_flag_needs_no_task_file(self, capsys):
        assert main(["solve", "--list"]) == 0
        assert "subinterval-der" in capsys.readouterr().out


class TestServeErrorPaths:
    def test_port_already_in_use_exits_1_with_hint(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            code = main(["serve", "--port", str(port), "--log-interval", "0"])
        out, err = capsys.readouterr()
        assert code == 1
        assert "already in use" in out
        assert "--port 0" in out  # the remedy is part of the message
        assert "Traceback" not in out + err

    def test_invalid_chaos_spec_exits_2(self, capsys):
        assert main(["serve", "--chaos", "bogus=1"]) == 2
        out, err = capsys.readouterr()
        assert "error" in out
        assert "Traceback" not in out + err


class TestInspect:
    def test_valid_schedule(self, task_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        main(["schedule", str(task_file), "--static", "0.1", "-o", str(out)])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "replayed energy" in text
        assert "deadline misses: none" in text

    def test_invalid_schedule_flagged(self, task_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        main(["schedule", str(task_file), "--static", "0.1", "-o", str(out)])
        payload = json.loads(out.read_text())
        payload["segments"] = payload["segments"][:1]  # drop most of the work
        out.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestReport:
    def test_generates_report(self, tmp_path, capsys):
        (tmp_path / "fig8.csv").write_text(
            "m,Idl,I1,F1,I2,F2\n2,0.7,3.3,2.8,1.8,1.4\n12,1,1,1,1,1.0\n"
        )
        assert main(["report", str(tmp_path)]) == 0
        assert "Claims passed" in capsys.readouterr().out

    def test_writes_file(self, tmp_path):
        (tmp_path / "fig8.csv").write_text(
            "m,Idl,I1,F1,I2,F2\n2,0.7,3.3,2.8,1.8,1.4\n12,1,1,1,1,1.0\n"
        )
        out = tmp_path / "report.md"
        main(["report", str(tmp_path), "-o", str(out)])
        assert out.read_text().startswith("# Reproduction report")

    def test_failing_claims_exit_nonzero(self, tmp_path):
        (tmp_path / "fig8.csv").write_text(
            "m,Idl,I1,F1,I2,F2\n2,1,1,1,1,1.0\n12,1,1,1,1,1.5\n"
        )
        assert main(["report", str(tmp_path)]) == 1

    def test_missing_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "not a directory" in capsys.readouterr().out


class TestExperiment:
    def test_runs_small_figure(self, capsys, tmp_path):
        csv = tmp_path / "fig8.csv"
        code = main(
            ["experiment", "fig8", "--reps", "2", "--csv", str(csv)]
        )
        assert code == 0
        assert "Fig. 8" in capsys.readouterr().out
        assert csv.exists()

    def test_runs_ablation(self, capsys):
        assert main(["experiment", "ablation-switching", "--reps", "2"]) == 0
        assert "switching" in capsys.readouterr().out

    def test_runs_core_selection(self, capsys):
        assert main(["experiment", "core-selection", "--reps", "2"]) == 0
        assert "core-count" in capsys.readouterr().out

    def test_runs_online_ablation(self, capsys):
        assert main(["experiment", "ablation-online", "--reps", "1"]) == 0
        assert "Online" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
