"""Unit tests for the paper-example presets."""

import numpy as np
import pytest

from repro.workloads import (
    SIX_TASK_EXPECTED,
    fig3_power,
    intro_example,
    motivational_power,
    six_task_example,
)


def test_intro_example_values():
    ts = intro_example()
    np.testing.assert_array_equal(ts.releases, [0, 2, 4])
    np.testing.assert_array_equal(ts.deadlines, [12, 10, 8])
    np.testing.assert_array_equal(ts.works, [4, 2, 4])


def test_motivational_power():
    p = motivational_power()
    assert p.alpha == 3.0
    assert p.static == 0.01


def test_six_task_example_values():
    ts = six_task_example()
    assert len(ts) == 6
    np.testing.assert_array_equal(ts.releases, [0, 2, 4, 6, 8, 12])
    np.testing.assert_array_equal(ts.works, [8, 14, 8, 4, 10, 6])
    np.testing.assert_array_equal(ts.deadlines, [10, 18, 16, 14, 20, 22])


def test_six_task_expected_intensities():
    ts = six_task_example()
    np.testing.assert_allclose(
        ts.intensities, SIX_TASK_EXPECTED["ideal_frequencies"]
    )


def test_fig3_power():
    p = fig3_power()
    assert p.critical_frequency() == pytest.approx(0.5)
