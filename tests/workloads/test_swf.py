"""Unit tests for the SWF trace importer."""

import pytest

from repro.core import SubintervalScheduler
from repro.power import PolynomialPower
from repro.sim import assert_valid
from repro.workloads.swf import SwfJob, parse_swf, taskset_from_swf, write_swf

SAMPLE = """\
; Synthetic SWF trace for tests
; fields: id submit wait run procs cpu mem reqprocs reqtime ...
1 0 0 100 4 -1 -1 4 300 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 50 5 200 2 -1 -1 2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 120 0 -1 1 -1 -1 1 100 -1 -1 -1 -1 -1 -1 -1 -1 -1
4 130 0 50 1 -1 -1 1 60 -1 -1 -1 -1 -1 -1 -1 -1 -1
"""


class TestParse:
    def test_comments_and_cancelled_jobs_skipped(self):
        jobs = parse_swf(SAMPLE)
        assert [j.job_id for j in jobs] == [1, 2, 4]  # job 3 has run_time -1

    def test_fields(self):
        j = parse_swf(SAMPLE)[0]
        assert j.submit_time == 0.0
        assert j.run_time == 100.0
        assert j.n_procs == 4
        assert j.requested_time == 300.0
        assert j.has_request

    def test_missing_request_flag(self):
        j = parse_swf(SAMPLE)[1]
        assert not j.has_request

    def test_short_line_rejected(self):
        with pytest.raises(ValueError, match="fields"):
            parse_swf("1 2 3\n")

    def test_malformed_number_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_swf("1 0 0 10 1 -1 -1 1 20\nx 0 0 10 1 -1 -1 1 20\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="no runnable jobs"):
            parse_swf("; only comments\n")


class TestTasksetConversion:
    def test_deadline_uses_request_when_larger(self):
        ts = taskset_from_swf(SAMPLE)
        # job 1: submit 0, request 300 > 2*100 -> deadline 300
        t = next(t for t in ts if t.name == "job1")
        assert t.deadline == pytest.approx(300.0)
        assert t.work == pytest.approx(100.0)

    def test_slack_fallback(self):
        ts = taskset_from_swf(SAMPLE, slack_factor=3.0)
        t = next(t for t in ts if t.name == "job2")
        assert t.deadline == pytest.approx(50 + 3 * 200)

    def test_slack_overrides_tight_request(self):
        # job 4: request 60 < 2*50=100 -> slack fallback wins
        ts = taskset_from_swf(SAMPLE)
        t = next(t for t in ts if t.name == "job4")
        assert t.deadline == pytest.approx(130 + 100)

    def test_max_jobs(self):
        ts = taskset_from_swf(SAMPLE, max_jobs=2)
        assert len(ts) == 2

    def test_nominal_frequency_scales_work(self):
        ts = taskset_from_swf(SAMPLE, nominal_frequency=2.0)
        t = next(t for t in ts if t.name == "job1")
        assert t.work == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            taskset_from_swf(SAMPLE, slack_factor=1.0)
        with pytest.raises(ValueError):
            taskset_from_swf(SAMPLE, nominal_frequency=0.0)

    def test_trace_schedules_end_to_end(self):
        ts = taskset_from_swf(SAMPLE)
        res = SubintervalScheduler(ts, 2, PolynomialPower(3.0, 0.1)).final("der")
        assert_valid(res.schedule, tol=1e-6)


class TestWriter:
    def test_roundtrip(self):
        jobs = parse_swf(SAMPLE)
        text = write_swf(jobs, header="regenerated")
        again = parse_swf(text)
        assert [(j.job_id, j.run_time) for j in again] == [
            (j.job_id, j.run_time) for j in jobs
        ]
        assert text.startswith("; regenerated")
