"""Tests for workload characterization."""

import numpy as np
import pytest

from repro.core import TaskSet
from repro.workloads.analyze import profile_taskset


@pytest.fixture
def profile(six_tasks):
    return profile_taskset(six_tasks)


class TestProfiles:
    def test_parallelism_matches_timeline(self, profile, six_tasks):
        np.testing.assert_array_equal(
            profile.parallelism, profile.timeline.overlap_counts
        )
        assert profile.peak_parallelism == 5

    def test_fluid_load_is_sum_of_live_intensities(self, profile, six_tasks):
        j = profile.timeline.locate(8.0)
        expected = sum(six_tasks.intensities[i] for i in profile.timeline[j].task_ids)
        assert profile.fluid_load[j] == pytest.approx(expected)

    def test_mean_fluid_load_time_weighted(self):
        # one task live half the horizon at intensity 1
        ts = TaskSet.from_tuples([(0, 5, 5), (0, 10, 0.0001)])
        p = profile_taskset(ts)
        assert p.mean_fluid_load == pytest.approx(0.5, abs=0.01)

    def test_utilization(self, profile, six_tasks):
        lo, hi = six_tasks.horizon
        expected = six_tasks.total_work / (4 * (hi - lo))
        assert profile.utilization(4) == pytest.approx(expected)

    def test_heavy_fraction(self, profile):
        # heavy subintervals [8,10] and [12,14]: 4 of 22 time units
        assert profile.heavy_fraction(4) == pytest.approx(4 / 22)
        assert profile.heavy_fraction(5) == 0.0

    def test_min_cores_fluid_bound(self, profile):
        # peak fluid load during [8,10]: 4/5+7/8+2/3+1/2+5/6 = 3.6667 -> 4 cores
        assert profile.min_cores_fluid() == 4

    def test_min_cores_bound_is_necessary(self):
        """No feasible unit-cap schedule can use fewer cores than the bound."""
        from repro.core import AdmissionController
        from repro.power import PolynomialPower

        ts = TaskSet.from_tuples([(0, 4, 4)] * 3)  # fluid load 3.0
        p = profile_taskset(ts)
        need = p.min_cores_fluid(1.0)
        assert need == 3
        power = PolynomialPower(3.0, 0.0)
        assert not AdmissionController(need - 1, power, f_max=1.0).is_schedulable(ts)
        assert AdmissionController(need, power, f_max=1.0).is_schedulable(ts)

    def test_intensity_histogram(self, profile):
        counts, edges = profile.intensity_histogram(bins=10)
        assert counts.sum() == 6
        assert len(edges) == 11

    def test_format(self, profile):
        text = profile.format(m=4)
        assert "6 tasks" in text
        assert "parallelism" in text
        assert "heavy fraction" in text

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            profile.utilization(0)
        with pytest.raises(ValueError):
            profile.min_cores_fluid(0.0)
