"""Tests for periodic-task unrolling."""

import numpy as np
import pytest

from repro.core import AdmissionController, SubintervalScheduler
from repro.power import PolynomialPower
from repro.sim import assert_valid
from repro.workloads.periodic import PeriodicTask, hyperperiod, unroll


class TestPeriodicTask:
    def test_defaults(self):
        t = PeriodicTask(period=10, wcet=2)
        assert t.relative_deadline == 10
        assert t.utilization == pytest.approx(0.2)
        assert t.density == pytest.approx(0.2)

    def test_constrained_deadline_density(self):
        t = PeriodicTask(period=10, wcet=2, deadline=4)
        assert t.density == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTask(period=0, wcet=1)
        with pytest.raises(ValueError):
            PeriodicTask(period=1, wcet=0)
        with pytest.raises(ValueError):
            PeriodicTask(period=1, wcet=1, deadline=0)
        with pytest.raises(ValueError):
            PeriodicTask(period=1, wcet=1, phase=-1)


class TestHyperperiod:
    def test_integer_periods(self):
        ts = [PeriodicTask(4, 1), PeriodicTask(6, 1)]
        assert hyperperiod(ts) == 12

    def test_fractional_periods(self):
        ts = [PeriodicTask(0.5, 0.1), PeriodicTask(0.75, 0.1)]
        assert hyperperiod(ts) == pytest.approx(1.5)

    def test_single(self):
        assert hyperperiod([PeriodicTask(7, 1)]) == 7


class TestUnroll:
    def test_job_counts_over_hyperperiod(self):
        ts = [PeriodicTask(4, 1, name="A"), PeriodicTask(6, 1, name="B")]
        jobs = unroll(ts)  # horizon = 12
        names = [t.name for t in jobs]
        assert sum(n.startswith("A#") for n in names) == 3
        assert sum(n.startswith("B#") for n in names) == 2

    def test_release_deadline_pattern(self):
        jobs = unroll([PeriodicTask(4, 1, deadline=3)], horizon=12)
        rel = sorted(t.release for t in jobs)
        assert rel == [0.0, 4.0, 8.0]
        assert all(t.deadline == t.release + 3 for t in jobs)

    def test_phase_offset(self):
        jobs = unroll([PeriodicTask(4, 1, phase=2)], horizon=12)
        assert min(t.release for t in jobs) == 2.0

    def test_partial_jobs_dropped_by_default(self):
        jobs = unroll([PeriodicTask(4, 1)], horizon=10)
        # job released at 8 has deadline 12 > 10: dropped
        assert len(jobs) == 2
        jobs_incl = unroll([PeriodicTask(4, 1)], horizon=10, include_partial=True)
        assert len(jobs_incl) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            unroll([])
        with pytest.raises(ValueError):
            unroll([PeriodicTask(4, 1)], horizon=0.5)


class TestIntegration:
    def test_unrolled_set_schedules(self):
        ts = [PeriodicTask(4, 1), PeriodicTask(6, 2), PeriodicTask(12, 3)]
        jobs = unroll(ts)
        power = PolynomialPower(alpha=3.0, static=0.05)
        res = SubintervalScheduler(jobs, 2, power).final("der")
        assert_valid(res.schedule, tol=1e-6)

    def test_utilization_bound_consistency(self):
        """Implicit-deadline periodic set with U <= m is schedulable at
        f_max = 1 after unrolling (fluid bound, checked by the exact flow
        test)."""
        ts = [PeriodicTask(4, 2), PeriodicTask(6, 3), PeriodicTask(12, 6)]
        U = sum(t.utilization for t in ts)  # 0.5 + 0.5 + 0.5 = 1.5 <= 2
        assert U <= 2
        jobs = unroll(ts)
        power = PolynomialPower(alpha=3.0, static=0.0)
        assert AdmissionController(2, power, f_max=1.0).is_schedulable(jobs)

    def test_overutilized_set_not_schedulable(self):
        ts = [PeriodicTask(4, 4), PeriodicTask(4, 4), PeriodicTask(4, 4)]
        jobs = unroll(ts)
        power = PolynomialPower(alpha=3.0, static=0.0)
        assert not AdmissionController(2, power, f_max=1.0).is_schedulable(jobs)
