"""Unit tests for the random workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    PaperWorkloadConfig,
    bursty_workload,
    intensity_menu,
    paper_workload,
    xscale_workload,
)


class TestIntensityMenu:
    def test_default_menu(self):
        np.testing.assert_allclose(intensity_menu(), np.arange(1, 11) / 10)

    def test_restricted_menu(self):
        np.testing.assert_allclose(intensity_menu(0.5, 1.0), [0.5, 0.6, 0.7, 0.8, 0.9, 1.0])

    def test_single_value(self):
        np.testing.assert_allclose(intensity_menu(1.0, 1.0), [1.0])

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            intensity_menu(0.0, 1.0)
        with pytest.raises(ValueError):
            intensity_menu(0.8, 0.5)


class TestPaperWorkload:
    def test_parameter_ranges(self, rng):
        ts = paper_workload(rng, PaperWorkloadConfig(n_tasks=200))
        assert len(ts) == 200
        assert np.all(ts.releases >= 0) and np.all(ts.releases <= 200)
        assert np.all(ts.works >= 10) and np.all(ts.works <= 30)
        # intensities land exactly on the menu
        menu = intensity_menu()
        for val in ts.intensities:
            assert np.min(np.abs(menu - val)) < 1e-9

    def test_deadline_formula(self, rng):
        ts = paper_workload(rng, PaperWorkloadConfig(n_tasks=50))
        np.testing.assert_allclose(
            ts.deadlines, ts.releases + ts.works / ts.intensities
        )

    def test_restricted_intensity_range(self, rng):
        cfg = PaperWorkloadConfig(n_tasks=100, intensity_low=0.7)
        ts = paper_workload(rng, cfg)
        assert np.all(ts.intensities >= 0.7 - 1e-9)

    def test_deterministic_given_seed(self):
        a = paper_workload(np.random.default_rng(5))
        b = paper_workload(np.random.default_rng(5))
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PaperWorkloadConfig(n_tasks=0)
        with pytest.raises(ValueError):
            PaperWorkloadConfig(work_range=(0.0, 5.0))
        with pytest.raises(ValueError):
            PaperWorkloadConfig(release_range=(10.0, 5.0))


class TestXscaleWorkload:
    def test_parameter_ranges(self, rng):
        ts = xscale_workload(rng, n_tasks=100)
        assert np.all(ts.works >= 4000) and np.all(ts.works <= 8000)
        # every task feasible at f2 = 400 MHz: intensity vs 400 is <= 1
        assert np.all(ts.works / ts.windows <= 400 + 1e-9)

    def test_deadline_uses_f2(self, rng):
        ts = xscale_workload(rng, n_tasks=20, f2_mhz=400.0)
        # required frequency = intensity * 400 <= 400
        req = ts.works / ts.windows
        assert np.all(req <= 400.0 + 1e-9)
        assert np.all(req >= 0.1 * 400.0 - 1e-9)


class TestBurstyWorkload:
    def test_structure(self, rng):
        ts = bursty_workload(rng, n_bursts=3, tasks_per_burst=5)
        assert len(ts) == 15
        assert ts[0].name.startswith("b0")

    def test_bursts_create_contention(self, rng):
        from repro.core import Timeline

        ts = bursty_workload(rng, n_bursts=2, tasks_per_burst=8, horizon=100.0)
        tl = Timeline(ts)
        assert tl.max_overlap() >= 8  # a burst overlaps heavily

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bursty_workload(rng, n_bursts=0)
        with pytest.raises(ValueError):
            bursty_workload(rng, slack_factor=1.0)

    def test_feasible_windows(self, rng):
        ts = bursty_workload(rng, slack_factor=2.0)
        assert np.all(ts.intensities <= 0.5 + 1e-9)
