"""Solver timeouts and graceful degradation at the registry dispatch point."""

from __future__ import annotations

import time

import pytest

from repro.core import TaskSet
from repro.engine import (
    Platform,
    SolveRequest,
    SolverTimeoutError,
    register,
    solve,
)
from repro.engine.registry import _REGISTRY
from repro.power import PolynomialPower

_TASKS = TaskSet.from_tuples(
    [(0.0, 10.0, 4.0), (2.0, 14.0, 5.0), (11.0, 20.0, 6.0)]
)


def _request() -> SolveRequest:
    return SolveRequest(
        tasks=_TASKS,
        platform=Platform(m=2, power=PolynomialPower(alpha=3.0, static=0.1)),
    )


@pytest.fixture
def hanging_solver():
    """A temporarily-registered solver that sleeps past any test timeout."""
    name = "optimal:test-hang"

    @register(name)
    def _hang(request, options):
        time.sleep(30.0)
        raise AssertionError("unreachable")

    yield name
    _REGISTRY.pop(name, None)


@pytest.fixture
def crashing_solver():
    name = "optimal:test-crash"

    @register(name)
    def _crash(request, options):
        raise RuntimeError("backend exploded")

    yield name
    _REGISTRY.pop(name, None)


class TestTimeout:
    def test_timeout_without_fallback_raises(self, hanging_solver):
        t0 = time.perf_counter()
        with pytest.raises(SolverTimeoutError) as err:
            solve(hanging_solver, _request(), timeout=0.1)
        assert time.perf_counter() - t0 < 5.0  # did not wait out the hang
        assert err.value.name == hanging_solver
        assert err.value.timeout == 0.1
        assert "deadline" in str(err.value)

    def test_solver_timeout_error_is_a_timeout_error(self):
        assert issubclass(SolverTimeoutError, TimeoutError)

    def test_fast_solver_is_unaffected_by_a_generous_timeout(self):
        bounded = solve("subinterval-der", _request(), timeout=30.0)
        free = solve("subinterval-der", _request())
        assert bounded.energy == free.energy
        assert not bounded.degraded
        assert bounded.degraded_from is None


class TestDegradation:
    def test_hung_solver_degrades_to_fallback(self, hanging_solver):
        result = solve(
            hanging_solver, _request(), timeout=0.1, fallback="subinterval-der"
        )
        assert result.solver == "subinterval-der"
        assert result.degraded
        assert result.degraded_from == hanging_solver
        assert "timeout" in result.degraded_reason
        assert "degraded" in repr(result)
        # the fallback result is the real heuristic solve
        direct = solve("subinterval-der", _request())
        assert result.energy == direct.energy

    def test_crashing_solver_degrades_with_the_exception_reason(
        self, crashing_solver
    ):
        result = solve(
            crashing_solver, _request(), timeout=5.0, fallback="der"
        )
        assert result.solver == "subinterval-der"  # alias resolved
        assert result.degraded_from == crashing_solver
        assert "RuntimeError" in result.degraded_reason
        assert "backend exploded" in result.degraded_reason

    def test_crash_without_fallback_propagates(self, crashing_solver):
        with pytest.raises(RuntimeError, match="backend exploded"):
            solve(crashing_solver, _request(), timeout=5.0)

    def test_fallback_equal_to_canonical_does_not_mask_the_timeout(
        self, hanging_solver
    ):
        with pytest.raises(SolverTimeoutError):
            solve(
                hanging_solver, _request(), timeout=0.1, fallback=hanging_solver
            )

    def test_degraded_schedule_is_validated(self, hanging_solver):
        result = solve(
            hanging_solver, _request(), timeout=0.1, fallback="subinterval-der"
        )
        assert result.schedule is not None
        assert result.violations == ()
        assert result.feasible

    def test_undegraded_results_report_degraded_false(self):
        result = solve("subinterval-der", _request())
        assert not result.degraded
        assert result.degraded_reason is None
        assert "degraded" not in repr(result)
