"""Engine session API: ``open_session`` / ``resolve`` against ``solve``."""

from __future__ import annotations

import pytest

from repro.core import Task, TaskSet
from repro.engine import (
    EngineSession,
    Platform,
    SolveRequest,
    open_session,
    resolve,
    session_solver_names,
    solve,
)
from repro.power import PolynomialPower

TASKS = TaskSet.from_tuples(
    [(0.0, 10.0, 4.0), (2.0, 14.0, 5.0), (1.0, 12.0, 3.0), (11.0, 20.0, 6.0)]
)
PLATFORM = Platform(m=2, power=PolynomialPower(alpha=3.0, static=0.1))


class TestOpenSession:
    def test_session_capable_names(self):
        names = session_solver_names()
        assert "subinterval-even" in names
        assert "subinterval-der" in names

    @pytest.mark.parametrize("name", ["subinterval-der", "der", "subinterval-even"])
    def test_open_resolves_aliases(self, name):
        session = open_session(name, platform=PLATFORM)
        assert isinstance(session, EngineSession)
        assert session.solver in session_solver_names()
        assert len(session) == 0

    def test_default_platform(self):
        session = open_session("subinterval-der")
        assert session.platform == Platform()

    def test_non_session_solver_rejected(self):
        with pytest.raises(ValueError, match="session"):
            open_session("naive")

    def test_unknown_solver_rejected(self):
        with pytest.raises(Exception):
            open_session("no-such-solver")


class TestResolve:
    @pytest.mark.parametrize("name", ["subinterval-der", "subinterval-even"])
    def test_resolve_matches_batch_solve(self, name):
        session = open_session(name, platform=PLATFORM, tasks=TASKS)
        incremental = resolve(session)
        batch = solve(name, SolveRequest(tasks=TASKS, platform=PLATFORM))
        assert incremental.energy == batch.energy
        assert incremental.solver == batch.solver
        assert list(incremental.schedule) == list(batch.schedule)

    def test_resolve_after_deltas_matches_batch(self):
        session = open_session("subinterval-der", platform=PLATFORM)
        handles = [session.add_task(t) for t in TASKS]
        session.remove_task(handles[2])
        res = resolve(session)
        remaining = TaskSet.from_tuples(
            [(0.0, 10.0, 4.0), (2.0, 14.0, 5.0), (11.0, 20.0, 6.0)]
        )
        batch = solve(
            "subinterval-der", SolveRequest(tasks=remaining, platform=PLATFORM)
        )
        assert res.energy == batch.energy

    def test_resolve_extras(self):
        session = open_session("subinterval-even", platform=PLATFORM, tasks=TASKS)
        session.add_task(Task(3.0, 9.0, 1.0))
        res = resolve(session)
        assert res.extras["deltas_applied"] == len(TASKS) + 1
        # lifetime aggregates across all deltas, not the current plan size
        assert res.extras["total_subintervals"] == session.core.total_columns
        assert res.extras["touched_subintervals"] == session.core.touched_columns
        assert 0 < res.extras["touched_subintervals"]
        assert len(res.extras["frequencies"]) == len(TASKS) + 1
        assert res.wall_time_s >= 0.0

    def test_session_passthroughs(self):
        session = open_session("subinterval-der", platform=PLATFORM)
        h = session.add_task(Task(0.0, 10.0, 4.0))
        assert len(session) == 1
        assert session.energy > 0.0
        assert session.last_delta.op == "add_task"
        assert 0.0 < session.touched_ratio <= 1.0
        session.advance_to(1.0, works={h: 3.0})
        session.complete_task(h)
        assert len(session) == 0
