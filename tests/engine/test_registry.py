"""The solver registry: one contract, every solver, shared fixtures.

The parametrized test below is the registry's acceptance gate: every
registered solver — heuristics, baselines, the practical discrete-frequency
planner, the online re-planner, and each exact backend — runs on the same
fixtures and must come back feasible, validator-clean, and (for solvers
sharing the continuous power model) no cheaper than the convex lower bound.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import TaskSet
from repro.engine import (
    Platform,
    SolveRequest,
    SolveResult,
    UnknownSolverError,
    get_solver,
    register,
    resolve_name,
    solve,
    solver_names,
)
from repro.optimal import PGConfig
from repro.power import PolynomialPower

# Contention-light on purpose: never more than ``m`` tasks overlap, so even
# the coordination-free ``naive`` stretch baseline meets every deadline and
# the feasibility invariant holds for the full registry.
FIXTURES = {
    "trio-m2": (
        TaskSet.from_tuples([(0.0, 10.0, 4.0), (2.0, 14.0, 5.0), (11.0, 20.0, 6.0)]),
        2,
    ),
    "quartet-m3": (
        TaskSet.from_tuples(
            [(0.0, 12.0, 5.0), (1.0, 13.0, 4.0), (3.0, 20.0, 6.0), (14.0, 22.0, 4.0)]
        ),
        3,
    ),
}

#: ``practical`` plans on a discrete frequency set with mW power numbers, so
#: its energy is not comparable against the continuous convex lower bound.
CONTINUOUS_POWER_SOLVERS = tuple(
    n for n in solver_names() if n != "practical"
)


def _options(name: str) -> dict:
    if name == "optimal:projected-gradient":
        # loose-but-correct FISTA tolerances keep the suite fast
        return {"config": PGConfig(tol=1e-8, patience=5)}
    return {}


def _request(fixture: str) -> SolveRequest:
    tasks, m = FIXTURES[fixture]
    return SolveRequest(
        tasks=tasks,
        platform=Platform(m=m, power=PolynomialPower(alpha=3.0, static=0.1)),
    )


class TestRegistryLookup:
    def test_names_are_sorted_and_complete(self):
        names = solver_names()
        assert list(names) == sorted(names)
        for expected in (
            "subinterval-even",
            "subinterval-der",
            "practical",
            "online",
            "optimal:interior-point",
            "optimal:projected-gradient",
            "edf",
            "yds",
            "naive",
        ):
            assert expected in names

    def test_legacy_aliases_resolve(self):
        assert resolve_name("der") == "subinterval-der"
        assert resolve_name("even") == "subinterval-even"
        assert resolve_name("interior-point") == "optimal:interior-point"
        assert get_solver("der") is get_solver("subinterval-der")

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(UnknownSolverError) as err:
            get_solver("warp-drive")
        for name in solver_names():
            assert name in str(err.value)

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register("edf")(lambda req, options: None)


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("name", solver_names())
class TestEverySolver:
    """The shared-fixture invariant suite, one cell per (solver, fixture)."""

    def test_contract_and_feasibility(self, name: str, fixture: str):
        req = _request(fixture)
        result = solve(name, req, **_options(name))

        assert isinstance(result, SolveResult)
        assert result.solver == name  # canonical echo
        assert result.kind
        assert result.energy > 0.0
        assert result.wall_time_s >= 0.0

        # every registered solver materializes a schedule by default, and
        # the post-solve hook must find nothing wrong with it on these
        # contention-light instances
        assert result.schedule is not None
        assert result.violations == ()
        assert result.deadline_misses == ()
        assert result.feasible

        # all work placed: the schedule's busy time carries the full demand
        tasks, _m = FIXTURES[fixture]
        placed = sum(seg.work for seg in result.schedule)
        assert placed == pytest.approx(float(tasks.works.sum()), rel=1e-6)

    def test_not_below_the_convex_lower_bound(self, name: str, fixture: str):
        if name not in CONTINUOUS_POWER_SOLVERS:
            pytest.skip("discrete-frequency mW power model")
        req = _request(fixture)
        opt = solve(
            "optimal:interior-point", req, validate=False, materialize=False
        )
        result = solve(name, req, validate=False, **_options(name))
        assert result.energy >= opt.energy * (1.0 - 1e-6)


class TestSolveResultNormalization:
    def test_results_are_frozen(self):
        result = solve("edf", _request("trio-m2"))
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.energy = 0.0  # type: ignore[misc]

    def test_call_options_override_request_options(self):
        req = SolveRequest(
            tasks=FIXTURES["trio-m2"][0],
            platform=Platform(m=2),
            options={"stage": "intermediate"},
        )
        inter = solve("subinterval-der", req, validate=False)
        final = solve("subinterval-der", req, validate=False, stage="final")
        assert inter.kind == "S^I2"
        assert final.kind == "S^F2"

    def test_shared_request_reuses_one_scheduler(self):
        req = _request("trio-m2")
        solve("subinterval-even", req, validate=False)
        scheduler = req.scheduler()
        solve("subinterval-der", req, validate=False)
        assert req.scheduler() is scheduler
