"""Unit tests for the DVFS transition-overhead analysis."""

import pytest

from repro.core import Schedule, Segment, SubintervalScheduler, TaskSet
from repro.power import PolynomialPower, TransitionModel, analyze_transitions
from tests.conftest import random_instance


@pytest.fixture
def power():
    return PolynomialPower(alpha=3.0, static=0.0)


def _sched(segs, n_cores=2, power=None):
    power = power or PolynomialPower(3.0, 0.0)
    tasks = TaskSet.from_tuples([(0, 100, 1)] * (max(s.task_id for s in segs) + 1))
    return Schedule(tasks, n_cores, power, segs)


class TestModel:
    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            TransitionModel(switch_time=-1)
        with pytest.raises(ValueError):
            TransitionModel(switch_energy=-1)
        with pytest.raises(ValueError):
            TransitionModel(frequency_tolerance=-1)


class TestCounting:
    def test_single_segment_is_one_wake(self, power):
        rep = analyze_transitions(
            _sched([Segment(0, 0, 0.0, 1.0, 1.0)]), TransitionModel()
        )
        assert rep.total_switches == 1
        assert rep.task_switches == 0

    def test_same_frequency_back_to_back_no_switch(self, power):
        segs = [Segment(0, 0, 0.0, 1.0, 1.0), Segment(1, 0, 1.0, 2.0, 1.0)]
        rep = analyze_transitions(_sched(segs), TransitionModel())
        assert rep.total_switches == 1  # only the initial wake
        assert rep.task_switches == 1

    def test_frequency_change_counts(self, power):
        segs = [Segment(0, 0, 0.0, 1.0, 1.0), Segment(1, 0, 1.0, 2.0, 2.0)]
        rep = analyze_transitions(_sched(segs), TransitionModel())
        assert rep.total_switches == 2

    def test_idle_gap_counts_as_wake(self, power):
        segs = [Segment(0, 0, 0.0, 1.0, 1.0), Segment(1, 0, 3.0, 4.0, 1.0)]
        rep = analyze_transitions(_sched(segs), TransitionModel())
        assert rep.total_switches == 2

    def test_per_core_breakdown(self, power):
        segs = [Segment(0, 0, 0.0, 1.0, 1.0), Segment(1, 1, 0.0, 1.0, 1.0)]
        rep = analyze_transitions(_sched(segs), TransitionModel())
        assert rep.switches_per_core == (1, 1)

    def test_tolerance_merges_near_equal_frequencies(self, power):
        segs = [
            Segment(0, 0, 0.0, 1.0, 1.0),
            Segment(1, 0, 1.0, 2.0, 1.0 + 1e-12),
        ]
        rep = analyze_transitions(_sched(segs), TransitionModel())
        assert rep.total_switches == 1


class TestCosts:
    def test_overhead_energy(self, power):
        segs = [Segment(0, 0, 0.0, 1.0, 1.0), Segment(1, 0, 1.0, 2.0, 2.0)]
        rep = analyze_transitions(_sched(segs), TransitionModel(switch_energy=0.5))
        assert rep.overhead_energy == pytest.approx(1.0)
        assert rep.adjusted_energy == pytest.approx(rep.base_energy + 1.0)
        assert rep.overhead_fraction > 0

    def test_absorbability(self, power):
        # a 2-unit gap absorbs a 1-unit switch; back-to-back does not
        segs = [
            Segment(0, 0, 0.0, 1.0, 1.0),
            Segment(1, 0, 3.0, 4.0, 2.0),   # gap 2 >= 1: absorbable
            Segment(0, 0, 4.0, 5.0, 1.0),   # gap 0 < 1: not absorbable
        ]
        rep = analyze_transitions(_sched(segs), TransitionModel(switch_time=1.0))
        # first wake has infinite gap; second absorbable; third not
        assert rep.unabsorbable_switches == 1
        assert not rep.all_absorbable

    def test_zero_cost_model_is_free(self):
        tasks, power = random_instance(0, n=10)
        res = SubintervalScheduler(tasks, 4, power).final("der")
        rep = analyze_transitions(res.schedule, TransitionModel())
        assert rep.overhead_energy == 0.0
        assert rep.adjusted_energy == pytest.approx(res.energy)

    def test_pipeline_switch_count_is_moderate(self):
        # switches bounded by segments (each segment is at most one switch)
        tasks, power = random_instance(1, n=15)
        res = SubintervalScheduler(tasks, 4, power).final("der")
        rep = analyze_transitions(res.schedule, TransitionModel())
        assert rep.total_switches <= len(res.schedule)
