"""Unit tests for two-level discrete-frequency emulation."""

import numpy as np
import pytest

from repro.core import SubintervalScheduler
from repro.power import (
    DiscreteFrequencySet,
    two_level_energy_of_schedule,
    two_level_split,
    xscale_frequency_set,
)
from tests.conftest import random_instance


@pytest.fixture
def fset():
    # convex-in-energy synthetic menu: p = f^3 exactly at points
    freqs = np.array([1.0, 2.0, 4.0])
    return DiscreteFrequencySet(freqs, freqs**3)


class TestSplit:
    def test_exact_work_and_time(self, fset):
        plan = two_level_split(fset, work=6.0, time_budget=2.0)  # f_plan = 3
        assert plan.f_lo == 2.0 and plan.f_hi == 4.0
        assert plan.work == pytest.approx(6.0)
        assert plan.busy_time == pytest.approx(2.0)
        assert plan.feasible

    def test_linear_time_split(self, fset):
        plan = two_level_split(fset, work=6.0, time_budget=2.0)
        # theta = (3-2)/(4-2) = 0.5 of the budget at f_hi
        assert plan.t_hi == pytest.approx(1.0)
        assert plan.t_lo == pytest.approx(1.0)

    def test_operating_point_is_single_level(self, fset):
        plan = two_level_split(fset, work=4.0, time_budget=2.0)  # f_plan = 2
        assert plan.f_lo == plan.f_hi == 2.0
        assert plan.t_hi == 0.0

    def test_below_fmin_sleeps(self, fset):
        plan = two_level_split(fset, work=1.0, time_budget=4.0)  # f_plan = 0.25
        assert plan.f_lo == 1.0
        assert plan.busy_time == pytest.approx(1.0)  # work / f_min
        assert plan.feasible

    def test_above_fmax_infeasible(self, fset):
        plan = two_level_split(fset, work=10.0, time_budget=2.0)  # f_plan = 5
        assert not plan.feasible
        assert plan.f_hi == 4.0

    def test_validation(self, fset):
        with pytest.raises(ValueError):
            two_level_split(fset, work=0.0, time_budget=1.0)
        with pytest.raises(ValueError):
            two_level_split(fset, work=1.0, time_budget=0.0)

    def test_energy_interpolates_between_levels(self, fset):
        plan = two_level_split(fset, work=6.0, time_budget=2.0)
        assert plan.energy == pytest.approx(1.0 * 8.0 + 1.0 * 64.0)

    def test_beats_round_up_on_convex_table(self, fset):
        # p = f^3 is convex in energy-per-work across the bracketing points,
        # so two-level emulation should not lose to round-up
        work, budget = 6.0, 2.0
        plan = two_level_split(fset, work, budget)
        e_round_up = float(np.asarray(fset.power(4.0))) * work / 4.0
        assert plan.energy <= e_round_up + 1e-9


class TestScheduleAccounting:
    def test_totals_and_misses(self):
        tasks, power = random_instance(2, n=10)
        fset = xscale_frequency_set()
        # scale planned frequencies into the MHz domain via a scaled instance
        from repro.workloads import xscale_workload

        rng = np.random.default_rng(5)
        xt = xscale_workload(rng, n_tasks=10)
        plan = SubintervalScheduler(xt, 4, fset.continuous_fit).final("der")
        energy, missed = two_level_energy_of_schedule(plan.schedule, fset)
        assert energy > 0
        assert isinstance(missed, tuple)

    def test_round_up_wins_on_xscale(self):
        """The honest extension finding: the XScale table is not convex in
        energy-per-cycle, so the paper's round-up rule beats two-level."""
        from repro.experiments import discrete_evaluation
        from repro.workloads import xscale_workload

        fset = xscale_frequency_set()
        rng = np.random.default_rng(11)
        tasks = xscale_workload(rng, n_tasks=15)
        plan = SubintervalScheduler(tasks, 4, fset.continuous_fit).final("der")
        e_round = discrete_evaluation(plan.schedule, fset).energy
        e_two, _ = two_level_energy_of_schedule(plan.schedule, fset)
        assert e_round <= e_two
