"""Unit tests for the Intel XScale configuration (paper Table III + fit)."""

import numpy as np
import pytest

from repro.power import (
    PAPER_FIT,
    XSCALE_FREQUENCIES_MHZ,
    XSCALE_POWERS_MW,
    xscale_frequency_set,
    xscale_power_model,
    xscale_table,
)
from repro.power.fitting import fit_power_model_full


class TestTable:
    def test_published_values(self):
        assert XSCALE_FREQUENCIES_MHZ == (150.0, 400.0, 600.0, 800.0, 1000.0)
        assert XSCALE_POWERS_MW == (80.0, 170.0, 400.0, 900.0, 1600.0)

    def test_table_arrays(self):
        f, p = xscale_table()
        assert f.shape == p.shape == (5,)


class TestPaperFit:
    def test_published_coefficients(self):
        m = xscale_power_model()
        assert m.gamma == pytest.approx(3.855e-6)
        assert m.alpha == pytest.approx(2.867)
        assert m.static == pytest.approx(63.58)

    def test_paper_fit_approximates_table(self):
        f, p = xscale_table()
        fitted = np.asarray(PAPER_FIT.power(f))
        # the paper's own fit is within ~20% of each table point
        assert np.all(np.abs(fitted - p) / p < 0.2)

    def test_our_refit_is_at_least_as_good_as_published(self):
        f, p = xscale_table()
        ours = fit_power_model_full(f, p, alpha_range=(2.0, 3.2))
        published_sse = float(np.sum((np.asarray(PAPER_FIT.power(f)) - p) ** 2))
        assert ours.sse <= published_sse * 1.0001

    def test_refit_close_to_paper_exponent(self):
        m = xscale_power_model(refit=True)
        assert m.alpha == pytest.approx(2.867, abs=0.15)
        assert m.static == pytest.approx(63.58, rel=0.35)


class TestFrequencySet:
    def test_operating_points(self):
        fs = xscale_frequency_set()
        assert fs.f_min == 150.0
        assert fs.f_max == 1000.0
        assert len(fs) == 5

    def test_power_at_points_is_measured(self):
        fs = xscale_frequency_set()
        assert fs.power(600.0) == pytest.approx(400.0)

    def test_quantization_example(self):
        fs = xscale_frequency_set()
        q = fs.quantize_up(np.array([380.0, 650.0, 1001.0]))
        np.testing.assert_allclose(q.frequencies[:2], [400.0, 800.0])
        assert not q.feasible[2]
