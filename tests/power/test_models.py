"""Unit tests for continuous power models."""

import numpy as np
import pytest

from repro.power import PolynomialPower, energy_per_work


class TestPolynomialPower:
    def test_power_formula(self):
        p = PolynomialPower(alpha=3.0, static=0.1)
        assert p.power(2.0) == pytest.approx(8.1)

    def test_power_with_gamma(self):
        p = PolynomialPower(alpha=2.0, static=1.0, gamma=0.5)
        assert p.power(4.0) == pytest.approx(0.5 * 16 + 1.0)

    def test_power_broadcasts(self):
        p = PolynomialPower(alpha=2.0, static=0.0)
        np.testing.assert_allclose(p.power(np.array([1.0, 2.0, 3.0])), [1, 4, 9])

    def test_energy(self):
        p = PolynomialPower(alpha=3.0, static=0.0)
        # E = f^2 * C = 0.25 * 4
        assert p.energy(4.0, 0.5) == pytest.approx(1.0)

    def test_energy_zero_work(self):
        p = PolynomialPower(alpha=3.0, static=0.1)
        assert p.energy(0.0, 1.0) == 0.0

    def test_energy_rejects_zero_frequency_with_work(self):
        p = PolynomialPower(alpha=3.0, static=0.0)
        with pytest.raises(ValueError):
            p.energy(1.0, 0.0)

    def test_energy_over_time(self):
        p = PolynomialPower(alpha=2.0, static=0.5)
        assert p.energy_over_time(2.0, 3.0) == pytest.approx((4 + 0.5) * 3)

    def test_alpha_below_two_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            PolynomialPower(alpha=1.5)

    def test_negative_static_rejected(self):
        with pytest.raises(ValueError, match="static"):
            PolynomialPower(alpha=2.0, static=-0.1)

    def test_nonpositive_gamma_rejected(self):
        with pytest.raises(ValueError, match="gamma"):
            PolynomialPower(alpha=2.0, gamma=0.0)


class TestCriticalFrequency:
    def test_zero_static_means_zero_crit(self):
        assert PolynomialPower(alpha=3.0, static=0.0).critical_frequency() == 0.0

    def test_fig3_value(self):
        # p = f^2 + 0.25 -> f_crit = sqrt(0.25/1) = 0.5
        assert PolynomialPower(alpha=2.0, static=0.25).critical_frequency() == pytest.approx(0.5)

    def test_general_formula(self):
        p = PolynomialPower(alpha=3.0, static=0.04, gamma=2.0)
        expected = (0.04 / (2.0 * 2.0)) ** (1 / 3)
        assert p.critical_frequency() == pytest.approx(expected)

    def test_crit_minimizes_energy_per_work(self):
        p = PolynomialPower(alpha=2.7, static=0.3, gamma=1.3)
        fc = p.critical_frequency()
        fs = np.linspace(fc * 0.2, fc * 5, 400)
        epw = p.energy_per_work(fs)
        assert p.energy_per_work(fc) <= epw.min() + 1e-9

    def test_energy_per_work_function(self):
        p = PolynomialPower(alpha=3.0, static=0.1)
        assert energy_per_work(p, 2.0) == pytest.approx(p.power(2.0) / 2.0)
        assert p.energy_per_work(2.0) == pytest.approx(4.0 + 0.05)

    def test_energy_per_work_rejects_zero(self):
        p = PolynomialPower(alpha=3.0, static=0.1)
        with pytest.raises(ValueError):
            p.energy_per_work(0.0)


class TestOptimalFrequency:
    def test_clamps_at_critical(self):
        p = PolynomialPower(alpha=2.0, static=0.25)
        assert p.optimal_frequency(2.0, 5.0) == pytest.approx(0.5)

    def test_tight_deadline_dominates(self):
        p = PolynomialPower(alpha=2.0, static=0.25)
        assert p.optimal_frequency(4.0, 4.0) == pytest.approx(1.0)

    def test_rejects_zero_time(self):
        p = PolynomialPower(alpha=2.0, static=0.25)
        with pytest.raises(ValueError):
            p.optimal_frequency(1.0, 0.0)

    def test_broadcasts(self):
        p = PolynomialPower(alpha=2.0, static=0.25)
        out = p.optimal_frequency(np.array([2.0, 4.0]), np.array([5.0, 4.0]))
        np.testing.assert_allclose(out, [0.5, 1.0])


class TestCopies:
    def test_with_static(self):
        p = PolynomialPower(alpha=3.0, static=0.1, gamma=2.0)
        q = p.with_static(0.5)
        assert q.static == 0.5 and q.alpha == 3.0 and q.gamma == 2.0

    def test_with_alpha(self):
        p = PolynomialPower(alpha=3.0, static=0.1)
        q = p.with_alpha(2.5)
        assert q.alpha == 2.5 and q.static == 0.1

    def test_repr(self):
        assert "f^3" in repr(PolynomialPower(alpha=3.0, static=0.0))
