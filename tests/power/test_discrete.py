"""Unit tests for the discrete-frequency platform model."""

import numpy as np
import pytest

from repro.power import DiscreteFrequencySet, PolynomialPower


@pytest.fixture
def fset() -> DiscreteFrequencySet:
    return DiscreteFrequencySet(
        frequencies=np.array([1.0, 2.0, 4.0]),
        powers=np.array([1.0, 5.0, 30.0]),
        continuous_fit=PolynomialPower(alpha=2.0, static=0.5),
    )


class TestConstruction:
    def test_requires_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            DiscreteFrequencySet(np.array([2.0, 1.0]), np.array([1.0, 2.0]))

    def test_requires_equal_length(self):
        with pytest.raises(ValueError):
            DiscreteFrequencySet(np.array([1.0, 2.0]), np.array([1.0]))

    def test_requires_positive_freqs(self):
        with pytest.raises(ValueError):
            DiscreteFrequencySet(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_len_and_bounds(self, fset):
        assert len(fset) == 3
        assert fset.f_min == 1.0
        assert fset.f_max == 4.0


class TestPowerLookup:
    def test_exact_points(self, fset):
        assert fset.power(2.0) == pytest.approx(5.0)
        np.testing.assert_allclose(fset.power(np.array([1.0, 4.0])), [1.0, 30.0])

    def test_off_point_uses_fit(self, fset):
        assert fset.power(3.0) == pytest.approx(9.0 + 0.5)

    def test_strict_off_point_raises(self):
        fs = DiscreteFrequencySet(
            np.array([1.0, 2.0]), np.array([1.0, 5.0]), strict=True
        )
        with pytest.raises(ValueError, match="non-operating"):
            fs.power(1.5)

    def test_no_fit_off_point_raises(self):
        fs = DiscreteFrequencySet(np.array([1.0, 2.0]), np.array([1.0, 5.0]))
        with pytest.raises(ValueError):
            fs.power(1.5)

    def test_critical_frequency_is_best_point(self, fset):
        # energy/work: 1.0, 2.5, 7.5 -> best at f=1
        assert fset.critical_frequency() == 1.0


class TestQuantization:
    def test_round_up(self, fset):
        q = fset.quantize_up(np.array([0.5, 1.0, 1.5, 2.0, 3.9]))
        np.testing.assert_allclose(q.frequencies, [1.0, 1.0, 2.0, 2.0, 4.0])
        assert q.feasible.all()
        assert q.miss_count == 0

    def test_infeasible_above_fmax(self, fset):
        q = fset.quantize_up(np.array([4.0, 4.1]))
        assert q.feasible[0]
        assert not q.feasible[1]
        assert np.isnan(q.frequencies[1])
        assert q.miss_count == 1
        assert q.miss_any

    def test_exact_point_stays(self, fset):
        q = fset.quantize_up(2.0)
        assert q.frequencies[0] == 2.0

    def test_tolerates_float_noise(self, fset):
        q = fset.quantize_up(2.0 * (1 + 1e-15))
        assert q.frequencies[0] == 2.0

    def test_rejects_nonpositive(self, fset):
        with pytest.raises(ValueError):
            fset.quantize_up(np.array([0.0]))

    def test_round_down(self, fset):
        np.testing.assert_allclose(
            fset.quantize_down(np.array([0.5, 1.5, 4.0, 9.0])), [1.0, 1.0, 4.0, 4.0]
        )


class TestEnergyAtPoints:
    def test_energy_uses_table_power(self, fset):
        # work 4 planned at 1.5 -> runs at 2.0, time 2, energy 5*2 = 10
        e, q = fset.energy_at_points(np.array([4.0]), np.array([1.5]))
        assert e[0] == pytest.approx(10.0)
        assert q.feasible.all()

    def test_energy_nan_when_infeasible(self, fset):
        e, q = fset.energy_at_points(np.array([4.0]), np.array([5.0]))
        assert np.isnan(e[0])
        assert not q.feasible[0]
