"""Unit tests for the from-scratch power-model curve fitter."""

import numpy as np
import pytest

from repro.power import (
    PolynomialPower,
    fit_linear_given_alpha,
    fit_power_model,
    fit_power_model_full,
)


class TestLinearSubproblem:
    def test_exact_recovery_fixed_alpha(self):
        freqs = np.array([1.0, 2.0, 3.0, 4.0])
        gamma, p0 = 0.7, 2.5
        powers = gamma * freqs**3 + p0
        g, p, sse = fit_linear_given_alpha(freqs, powers, 3.0)
        assert g == pytest.approx(gamma)
        assert p == pytest.approx(p0)
        assert sse == pytest.approx(0.0, abs=1e-18)

    def test_negative_intercept_clamped(self):
        # data whose unconstrained intercept would be negative
        freqs = np.array([1.0, 2.0, 3.0])
        powers = np.array([0.5, 4.0, 13.0])  # roughly 1.5 f^2 - 1
        g, p, _ = fit_linear_given_alpha(freqs, powers, 2.0)
        assert p >= 0.0
        assert g > 0.0


class TestFullFit:
    def test_exact_recovery(self):
        truth = PolynomialPower(alpha=2.7, static=12.0, gamma=3e-4)
        freqs = np.array([100.0, 200.0, 400.0, 700.0, 1000.0])
        powers = np.asarray(truth.power(freqs))
        fit = fit_power_model(freqs, powers)
        assert fit.alpha == pytest.approx(2.7, abs=1e-4)
        assert fit.static == pytest.approx(12.0, rel=1e-3)
        assert fit.gamma == pytest.approx(3e-4, rel=1e-2)

    def test_noisy_fit_close(self, rng):
        truth = PolynomialPower(alpha=2.9, static=60.0, gamma=5e-6)
        freqs = np.linspace(150, 1000, 8)
        powers = np.asarray(truth.power(freqs)) * (1 + rng.normal(0, 0.01, 8))
        full = fit_power_model_full(freqs, powers)
        assert full.rmse < 0.05 * powers.max()
        assert 2.0 <= full.model.alpha <= 3.5

    def test_residual_diagnostics(self):
        truth = PolynomialPower(alpha=2.5, static=1.0, gamma=0.01)
        freqs = np.array([10.0, 20.0, 40.0, 80.0])
        powers = np.asarray(truth.power(freqs))
        full = fit_power_model_full(freqs, powers)
        assert full.sse == pytest.approx(0.0, abs=1e-9)
        assert len(full.residuals) == 4

    def test_alpha_lower_bound_enforced(self):
        freqs = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="alpha >= 2"):
            fit_power_model(freqs, freqs**2, alpha_range=(1.0, 3.0))

    def test_needs_three_points(self):
        with pytest.raises(ValueError, match="3 points"):
            fit_power_model(np.array([1.0, 2.0]), np.array([1.0, 4.0]))

    def test_rejects_nonpositive_freqs(self):
        with pytest.raises(ValueError, match="positive"):
            fit_power_model(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))

    def test_bad_range(self):
        freqs = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="increasing pair"):
            fit_power_model(freqs, freqs**2, alpha_range=(3.0, 3.0))
