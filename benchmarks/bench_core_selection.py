"""Benchmark for the §VI-D core-count selection ablation.

Verifies the remark's claim: pre-selecting the core count never hurts, and
pays off most at high static power.
"""

from repro.experiments import core_selection_exp

from .conftest import reps


def test_core_selection_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: core_selection_exp.run(reps=max(reps() * 2, 10), seed=0, m_max=8),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "core_selection.csv").write_text(result.to_csv())
    benchmark.extra_info["savings"] = [float(s) for s in result.savings]

    assert all(s >= -1e-9 for s in result.savings), "selection never hurts"
    # sleeping cores are free in the paper's model, so the measurable value
    # is parked cores: the selected count must sit below the package size...
    assert all(p > 0 for p in result.parked_cores)
    # ...and shrink further as static power compresses executions
    assert result.mean_best_m[-1] <= result.mean_best_m[0] + 1e-9
