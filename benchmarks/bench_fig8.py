"""Benchmark regenerating Fig. 8: NEC vs number of cores.

Paper shape: F2's NEC is worst at m = 2 and drops sharply as cores are
added (more cores -> fewer heavily overlapped subintervals).
"""

from repro.experiments import fig8

from .conftest import report, reps, workers


def test_fig8_nec_vs_cores(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig8.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig8")
    f2 = result.series["F2"]
    assert f2[0] == max(f2), "F2 should be worst at m=2"
    assert f2[-1] < 1.05, "with 12 cores F2 is essentially optimal"
