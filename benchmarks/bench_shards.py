"""Sharded scale-out benchmark: router throughput + session equivalence.

Two phases, one archived report (``results/bench/BENCH_shards.json``;
``BENCH_shards_smoke.json`` for smoke runs):

1. **Throughput** — the PR 3 mixed workload (default 1000 requests at
   concurrency 64, 95% ``/schedule`` / 5% ``/admit``, 3-task sets)
   against a 1-shard and a 4-shard router, reporting RPS, latency
   percentiles, and the per-shard balance scraped from the merged
   ``/v1/metrics``.  The ≥2.5x RPS gate at 4 shards is *soft*: shards
   are processes, so the speedup needs ≥4 cores to exist — the report
   records ``os.cpu_count()`` and the gate degrades to a warning when
   the host cannot physically pass it (or when ``--soft-gate`` is set).
2. **Equivalence** (hard gate) — a seeded 500-event ``/admit`` stream
   over three platforms through a 3-shard router must be bit-identical
   — every per-event ack and the final plan snapshots (boundaries, x,
   energy via ``peek``) — to the same stream through a single-process
   ``SchedulingService``.  Any divergence fails the run regardless of
   host.

Usage::

    python -m benchmarks.bench_shards --smoke
    python -m benchmarks.bench_shards
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import platform as _platform
import sys
from pathlib import Path

from repro.service import SchedulingService, ServiceConfig, ShardRouter
from repro.service.loadgen import HttpClient, run_loadgen

#: the platforms the equivalence stream is spread over — distinct
#: signatures, so a 3-shard run genuinely exercises the hash ring
PLATFORMS = (
    {"f_max": 2.0},
    {"f_max": 2.5, "m": 2},
    {"f_max": 3.0, "static": 0.05},
)


def _config(**over) -> ServiceConfig:
    return ServiceConfig(
        **{
            "port": 0,
            "workers": 0,
            "log_interval": 0.0,
            "batch_window": 0.0,
            **over,
        }
    )


async def _throughput(shards: int, n_requests: int, seed: int) -> dict:
    """The PR 3 mixed workload against an n-shard router."""
    router = ShardRouter(_config(), shards=shards)
    await router.start()
    try:
        stats = await run_loadgen(
            "127.0.0.1",
            router.port,
            n_requests=n_requests,
            concurrency=64,
            n_tasks=3,
            unique=50,
            admit_frac=0.05,
            include_schedule=False,
            seed=seed,
            shard_report=True,
        )
    finally:
        await router.stop()
    return {
        "shards": shards,
        "rps": stats["rps"],
        "ok": stats["ok"],
        "shed": stats["shed"],
        "errors": stats["errors"],
        "latency_ms": stats["latency_ms"],
        "balance": stats.get("shards"),
    }


def _make_stream(n: int, seed: int) -> list[list[float]]:
    import numpy as np

    rng = np.random.default_rng(seed)
    releases = np.cumsum(rng.exponential(1.0, size=n))
    works = rng.uniform(5.0, 20.0, size=n)
    deadlines = releases + works / rng.uniform(0.5, 1.5, size=n)
    return [
        [float(r), float(d), float(c)]
        for r, d, c in zip(releases, deadlines, works)
    ]


async def _drive_stream(port: int, n_events: int, seed: int):
    """Replay the seeded admit mix; returns (acks, peeks) as JSON strings."""
    streams = [
        _make_stream(n_events // len(PLATFORMS), seed + i)
        for i in range(len(PLATFORMS))
    ]
    client = HttpClient("127.0.0.1", port)
    await client.connect()
    acks: list[str] = []
    try:
        for platform in PLATFORMS:
            status, _ = await client.request(
                "POST", "/v1/admit", {"reset": True, **platform}
            )
            if status != 200:
                raise RuntimeError(f"admit reset answered {status}")
        for step in range(max(len(s) for s in streams)):
            for i, platform in enumerate(PLATFORMS):
                if step >= len(streams[i]):
                    continue
                status, body = await client.request(
                    "POST", "/v1/admit",
                    {"task": streams[i][step], **platform},
                )
                if status != 200:
                    raise RuntimeError(
                        f"admit event {step} platform {i} answered {status}"
                    )
                acks.append(json.dumps(body["result"], sort_keys=True))
        peeks = []
        for platform in PLATFORMS:
            _, body = await client.request(
                "POST", "/v1/admit", {"peek": True, **platform}
            )
            peeks.append(json.dumps(body["result"], sort_keys=True))
    finally:
        await client.close()
    return acks, peeks


async def _equivalence(n_events: int, seed: int) -> dict:
    """3-shard router vs single-process engine on the same admit stream."""
    router = ShardRouter(_config(), shards=3)
    await router.start()
    try:
        sharded_acks, sharded_peeks = await _drive_stream(
            router.port, n_events, seed
        )
    finally:
        await router.stop()

    service = SchedulingService(_config())
    await service.start()
    try:
        single_acks, single_peeks = await _drive_stream(
            service.port, n_events, seed
        )
    finally:
        await service.stop()

    divergent = sum(a != b for a, b in zip(sharded_acks, single_acks))
    # archive a digest of each snapshot, not the full allocation matrix:
    # the sha256 over the canonical JSON is what the bit-equality gate
    # compares, and it keeps the report reviewable
    summaries = []
    for p in sharded_peeks:
        snap = json.loads(p)
        summaries.append({
            "committed": snap["committed"],
            "energy": snap["energy"],
            "n_subintervals": snap["n_subintervals"],
            "sha256": hashlib.sha256(p.encode()).hexdigest(),
        })
    return {
        "events": len(sharded_acks),
        "platforms": len(PLATFORMS),
        "acks_bit_equal": sharded_acks == single_acks,
        "divergent_acks": divergent,
        "snapshots_bit_equal": sharded_peeks == single_peeks,
        "final_snapshots": summaries,
    }


async def _run(n_requests: int, n_events: int, seed: int) -> dict:
    print(
        f"throughput: {n_requests} requests (95% /schedule, 5% /admit), "
        "concurrency 64",
        flush=True,
    )
    runs = {}
    for shards in (1, 4):
        runs[str(shards)] = await _throughput(shards, n_requests, seed)
        r = runs[str(shards)]
        print(
            f"  {shards} shard(s): {r['rps']:8.1f} rps, "
            f"p50={r['latency_ms']['p50']}ms p95={r['latency_ms']['p95']}ms, "
            f"ok={r['ok']} shed={r['shed']} errors={r['errors']}",
            flush=True,
        )
    speedup = runs["4"]["rps"] / runs["1"]["rps"]
    print(f"  speedup at 4 shards: {speedup:.2f}x", flush=True)

    print(f"equivalence: {n_events}-event admit stream, 3 shards vs 1 process",
          flush=True)
    equivalence = await _equivalence(n_events, seed)
    print(
        f"  acks bit-equal: {equivalence['acks_bit_equal']}, "
        f"snapshots bit-equal: {equivalence['snapshots_bit_equal']}",
        flush=True,
    )
    return {"runs": runs, "speedup_4x": speedup, "equivalence": equivalence}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small fast run")
    ap.add_argument("--requests", type=int, default=None)
    ap.add_argument("--events", type=int, default=None)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--gate", type=float, default=2.5,
                    help="RPS speedup gate at 4 shards (soft on small hosts)")
    ap.add_argument("--soft-gate", action="store_true",
                    help="never fail on the throughput gate")
    ap.add_argument("--out", type=Path, default=None)
    args = ap.parse_args(argv)

    n_requests = args.requests or (120 if args.smoke else 1000)
    n_events = args.events or (60 if args.smoke else 500)
    cpus = os.cpu_count() or 1

    measured = asyncio.run(_run(n_requests, n_events, args.seed))

    # shards are processes: the gate needs the cores to exist.  On a
    # smaller host the number is still recorded, but missing it is a
    # property of the machine, not the code.
    gate_is_soft = args.soft_gate or args.smoke or cpus < 4
    gate_met = measured["speedup_4x"] >= args.gate
    report = {
        "benchmark": "sharded-router",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "requests": n_requests,
            "concurrency": 64,
            "n_tasks": 3,
            "admit_frac": 0.05,
            "seed": args.seed,
            "equivalence_events": n_events,
        },
        "host": {
            "cpu_count": cpus,
            "platform": _platform.platform(),
            "python": _platform.python_version(),
        },
        "gate": {
            "rps_speedup": args.gate,
            "met": gate_met,
            "soft": gate_is_soft,
        },
        **measured,
    }
    out = args.out
    if out is None:
        stem = "BENCH_shards_smoke" if args.smoke else "BENCH_shards"
        out = (Path(__file__).resolve().parent.parent
               / "results" / "bench" / f"{stem}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}", flush=True)

    failures: list[str] = []
    equivalence = measured["equivalence"]
    if not equivalence["acks_bit_equal"]:
        failures.append(
            f"{equivalence['divergent_acks']} admit acks diverged between "
            "the 3-shard and single-process runs"
        )
    if not equivalence["snapshots_bit_equal"]:
        failures.append(
            "final plan snapshots (boundaries/x/energy) diverged between "
            "the 3-shard and single-process runs"
        )
    if not gate_met:
        msg = (
            f"4-shard speedup {measured['speedup_4x']:.2f}x below the "
            f"{args.gate}x gate"
        )
        if gate_is_soft:
            print(
                f"WARNING: {msg} (soft: host has {cpus} cpus)",
                file=sys.stderr,
            )
        else:
            failures.append(msg)

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
