"""Ablation: DER-based vs even allocation, isolated from the rest.

DESIGN.md's central design choice.  Measures the per-subinterval allocation
kernels themselves and the end-to-end energy gap they produce across a batch
of random instances (the paper's headline qualitative result).
"""

import numpy as np
import pytest

from repro.core import (
    SubintervalScheduler,
    Timeline,
    allocate_der,
    allocate_evenly,
    solve_ideal,
)
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig

_POWER = PolynomialPower(alpha=3.0, static=0.1)


def _heavy_setup(n=24, m=2, seed=3):
    rng = np.random.default_rng(seed)
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=n))
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, _POWER)
    heavy = tl.heavy(m)
    assert heavy, "instance must have contention"
    return tl, ideal, heavy, m


def test_even_allocation_kernel(benchmark):
    _, _, heavy, m = _heavy_setup()

    def run():
        return [allocate_evenly(sub, m) for sub in heavy]

    out = benchmark(run)
    assert len(out) == len(heavy)


def test_der_allocation_kernel(benchmark):
    _, ideal, heavy, m = _heavy_setup()

    def run():
        return [allocate_der(sub, m, ideal) for sub in heavy]

    out = benchmark(run)
    assert len(out) == len(heavy)


def test_der_wins_energy_across_batch(benchmark):
    """End-to-end F2-vs-F1 energy ratio over a seeded batch of instances."""

    def run():
        ratios = []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=20))
            sch = SubintervalScheduler(tasks, 4, _POWER)
            ratios.append(sch.final("der").energy / sch.final("even").energy)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nF2/F1 energy ratio over 10 instances: mean={np.mean(ratios):.4f} "
        f"min={min(ratios):.4f} max={max(ratios):.4f}"
    )
    assert np.mean(ratios) < 1.0, "DER-based must win on average"
    assert max(ratios) <= 1.0 + 1e-9, "DER-based never loses on these workloads"
