"""Ablation: the paper's "lightweight" claim, measured.

The whole argument of §V is that the subinterval heuristic is cheap enough
for real-time use while the convex-optimal solve is not.  This benchmark
times both on identical instances and asserts the heuristic's advantage,
plus a scaling benchmark over n for the pipeline itself.
"""

import time

import numpy as np
import pytest

from repro.core import SubintervalScheduler
from repro.optimal import solve_optimal
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig

_POWER = PolynomialPower(alpha=3.0, static=0.1)


def _instance(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return paper_workload(rng, PaperWorkloadConfig(n_tasks=n))


def test_heuristic_f2_runtime(benchmark):
    tasks = _instance(20)
    result = benchmark(
        lambda: SubintervalScheduler(tasks, 4, _POWER).final("der").energy
    )
    assert result > 0


def test_optimal_solver_runtime(benchmark):
    tasks = _instance(20)
    result = benchmark.pedantic(
        lambda: solve_optimal(tasks, 4, _POWER).energy, rounds=3, iterations=1
    )
    assert result > 0


def test_heuristic_is_order_of_magnitude_cheaper():
    """The headline lightweight claim on a 30-task instance."""
    tasks = _instance(30)

    t0 = time.perf_counter()
    for _ in range(5):
        SubintervalScheduler(tasks, 4, _POWER).final("der")
    heuristic = (time.perf_counter() - t0) / 5

    t0 = time.perf_counter()
    solve_optimal(tasks, 4, _POWER)
    optimal = time.perf_counter() - t0

    assert heuristic * 5 < optimal, (
        f"heuristic ({heuristic:.4f}s) should be >5x cheaper than the "
        f"optimal solve ({optimal:.4f}s)"
    )


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def test_pipeline_scaling(benchmark, n):
    """Pipeline runtime across task counts (complexity curve)."""
    tasks = _instance(n)
    benchmark.extra_info["n_tasks"] = n
    benchmark(lambda: SubintervalScheduler(tasks, 4, _POWER).final("der"))
