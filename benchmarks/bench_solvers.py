"""Ablation: the three optimal solvers on one instance (speed + agreement).

DESIGN.md calls out the structured interior-point solver as the reason the
Monte-Carlo sweeps are tractable; this benchmark quantifies it against the
projected-gradient and SciPy alternatives.
"""

import numpy as np
import pytest

from repro.core import Timeline
from repro.optimal import (
    ConvexProblem,
    InteriorPointSolver,
    ProjectedGradientSolver,
    solve_with_scipy,
)
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=20))
    return ConvexProblem(
        Timeline(tasks), 4, PolynomialPower(alpha=3.0, static=0.1)
    )


@pytest.fixture(scope="module")
def reference_energy(problem):
    return InteriorPointSolver(problem).solve().energy


def test_interior_point(benchmark, problem, reference_energy):
    sol = benchmark.pedantic(
        lambda: InteriorPointSolver(problem).solve(), rounds=3, iterations=1
    )
    assert sol.energy == pytest.approx(reference_energy, rel=1e-6)


@pytest.mark.parametrize("kernel", ["banded", "schur"])
def test_interior_point_kernel(benchmark, problem, reference_energy, kernel):
    """The structured Newton kernels against the dense oracle above."""
    sol = benchmark.pedantic(
        lambda: InteriorPointSolver(problem, kernel=kernel).solve(),
        rounds=3,
        iterations=1,
    )
    assert sol.energy == pytest.approx(reference_energy, rel=1e-9)


def test_interior_point_warm(benchmark, problem, reference_energy):
    """A warm re-solve from the cached iterate of an identical solve."""
    from repro.optimal import solve_problem, warm_start_cache

    warm_start_cache().clear()
    solve_problem(problem, warm="auto")  # deposit the iterate

    sol = benchmark.pedantic(
        lambda: solve_problem(problem, warm="auto"), rounds=3, iterations=1
    )
    assert sol.profile.warm_started
    assert sol.energy == pytest.approx(reference_energy, rel=1e-9)


def test_projected_gradient(benchmark, problem, reference_energy):
    sol = benchmark.pedantic(
        lambda: ProjectedGradientSolver(problem).solve(), rounds=1, iterations=1
    )
    assert sol.energy == pytest.approx(reference_energy, rel=1e-3)


def test_scipy_slsqp(benchmark, problem, reference_energy):
    sol = benchmark.pedantic(
        lambda: solve_with_scipy(problem, method="SLSQP"), rounds=1, iterations=1
    )
    assert sol.energy == pytest.approx(reference_energy, rel=1e-3)


def test_flow_demand_realization(benchmark, problem):
    """The combinatorial (max-flow) feasibility path used by admission
    control — orders of magnitude cheaper than any optimizer."""
    from repro.optimal import realize_demands

    tasks = problem.timeline.tasks
    demands = tasks.works / 2.0  # comfortably feasible at f = 2

    real = benchmark(lambda: realize_demands(tasks, problem.m, demands))
    assert real.feasible


def test_capped_interior_point(benchmark, problem, reference_energy):
    """The frequency-capped variant costs about the same as the plain solve
    (the cap barrier shares the Woodbury task-block structure)."""
    from repro.optimal import solve_optimal_capped

    tasks = problem.timeline.tasks

    sol = benchmark.pedantic(
        lambda: solve_optimal_capped(
            tasks, problem.m, problem.power, f_max=2.0
        ),
        rounds=3,
        iterations=1,
    )
    assert sol.energy >= reference_energy * (1 - 1e-8)
