"""Newton-kernel benchmark: structured vs dense, cold vs warm.

Times the interior-point solver's Newton kernels on two paper-style
instance families and emits a machine-readable report
(``results/bench/BENCH_optimal.json`` for the archived full run,
``BENCH_optimal_smoke.json`` for the CI smoke run):

* ``long-horizon`` — tasks with localized windows spread over a long
  horizon, the common aperiodic shape.  The subinterval band is narrow
  (bandwidth ≈ tens of 1000 subintervals at n=500), so the banded
  Cholesky kernel wins by an order of magnitude over the dense oracle.
* ``overlap-heavy`` — the stock ``paper_workload`` generator, whose long
  windows overlap almost everything (bandwidth ≈ J).  The band is useless
  here; ``auto`` picks the Schur kernel, whose win is bounded by the
  dense/Schur factor-cost ratio.

Two modes:

* ``--smoke`` — small instances with a *soft* regression gate: the run
  fails only when ``auto`` is slower than the dense oracle by more than
  ``--soft-factor`` (default 1.5×, lenient enough for noisy CI runners)
  or when any kernel disagrees with the dense energy beyond 1e-9
  relative.  Wired into ``make check`` / CI.
* default (full) — the headline n=500 measurement behind
  ``docs/benchmarking.md``; slow (the dense oracle alone runs ~10 s per
  solve on small machines), run manually and commit the JSON.

Usage::

    python -m benchmarks.bench_optimal_kernel --smoke
    python -m benchmarks.bench_optimal_kernel --n-tasks 500 --reps 1
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import Timeline
from repro.core.task import TaskSet
from repro.optimal import (
    ConvexProblem,
    InteriorPointSolver,
    solve_problem,
    warm_start_cache,
)
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig

REL_TOL = 1e-9  # energy agreement demanded of every kernel / warm solve

_POWER = PolynomialPower(alpha=3.0, static=0.1)


def _overlap_heavy(n_tasks: int, m: int, seed: int) -> ConvexProblem:
    rng = np.random.default_rng(seed)
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=n_tasks))
    return ConvexProblem(Timeline(tasks), m, _POWER)


def _long_horizon(n_tasks: int, m: int, seed: int) -> ConvexProblem:
    # localized windows (1-3 time units) spread over a horizon that grows
    # with n: each subinterval couples only to near neighbours, keeping the
    # band narrow regardless of instance size
    rng = np.random.default_rng(seed)
    horizon = n_tasks / 5.0
    rel = np.sort(rng.uniform(0.0, horizon, n_tasks))
    win = rng.uniform(1.0, 3.0, n_tasks)
    works = rng.uniform(0.2, 0.8, n_tasks) * win
    tasks = TaskSet.from_arrays(rel, rel + win, works)
    return ConvexProblem(Timeline(tasks), m, _POWER)


INSTANCES = {
    "long-horizon": _long_horizon,
    "overlap-heavy": _overlap_heavy,
}


def _time_solve(problem: ConvexProblem, kernel: str, reps: int) -> dict:
    best = float("inf")
    sol = None
    for _ in range(reps):
        t0 = time.perf_counter()
        sol = InteriorPointSolver(problem, kernel=kernel).solve()
        best = min(best, time.perf_counter() - t0)
    pr = sol.profile
    return {
        "kernel": pr.kernel,  # what "auto" resolved to
        "wall_s": best,
        "energy": float(sol.energy),
        "newton_iterations": pr.total_newton,
        "factor_time_s": pr.factor_time_s,
        "dense_fallbacks": pr.dense_fallbacks,
        "polish_iters": pr.polish_iters,
    }


def _time_warm(problem: ConvexProblem) -> dict:
    """Cold solve that deposits an iterate, then a warm solve from it."""
    warm_start_cache().clear()
    t0 = time.perf_counter()
    cold = solve_problem(problem, warm="auto")
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = solve_problem(problem, warm="auto")
    warm_s = time.perf_counter() - t0
    assert warm.profile.warm_started, "second solve should hit the cache"
    return {
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "cold_newton": cold.profile.total_newton,
        "warm_newton": warm.profile.total_newton,
        "rel_err": abs(warm.energy - cold.energy) / max(abs(cold.energy), 1.0),
    }


def run_instance(
    name: str, n_tasks: int, m: int, seed: int, reps: int
) -> tuple[dict, list[str]]:
    """Benchmark one instance; returns (report, regression messages)."""
    problem = INSTANCES[name](n_tasks, m, seed)
    print(
        f"{name}: n={n_tasks}, J={problem.n_subs}, k={problem.k}, "
        f"bandwidth={problem.sub_bandwidth}",
        flush=True,
    )
    kernels = {}
    for kernel in ("dense", "banded", "schur", "auto"):
        kernels[kernel] = _time_solve(problem, kernel, reps)
        print(
            f"  {kernel:>6s} -> {kernels[kernel]['kernel']:>6s}: "
            f"{kernels[kernel]['wall_s']:8.3f}s, "
            f"{kernels[kernel]['newton_iterations']:4d} Newton iters",
            flush=True,
        )
    e_ref = kernels["dense"]["energy"]
    max_rel = max(
        abs(r["energy"] - e_ref) / max(abs(e_ref), 1.0)
        for r in kernels.values()
    )
    warm = _time_warm(problem)
    print(
        f"    warm: {warm['warm_wall_s']:.3f}s / {warm['warm_newton']} iters "
        f"(cold {warm['cold_wall_s']:.3f}s / {warm['cold_newton']})",
        flush=True,
    )
    speedup = kernels["dense"]["wall_s"] / kernels["auto"]["wall_s"]
    report = {
        "n_tasks": n_tasks,
        "m": m,
        "seed": seed,
        "reps": reps,
        "n_vars": problem.k,
        "n_subintervals": problem.n_subs,
        "bandwidth": problem.sub_bandwidth,
        "kernels": kernels,
        "warm_start": warm,
        "speedup_auto_vs_dense": speedup,
        "max_rel_energy_err": max_rel,
    }

    regressions: list[str] = []
    if max_rel > REL_TOL:
        regressions.append(
            f"{name}: kernel energy disagreement {max_rel:.2e} "
            f"exceeds {REL_TOL:.0e}"
        )
    if warm["rel_err"] > REL_TOL:
        regressions.append(
            f"{name}: warm-vs-cold energy drift {warm['rel_err']:.2e} "
            f"exceeds {REL_TOL:.0e}"
        )
    if warm["warm_newton"] >= warm["cold_newton"]:
        regressions.append(
            f"{name}: warm start saved no Newton iterations "
            f"({warm['warm_newton']} >= {warm['cold_newton']})"
        )
    return report, regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small CI-gate run")
    ap.add_argument("--n-tasks", type=int, default=None)
    ap.add_argument("--m", type=int, default=8)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument(
        "--instance",
        choices=[*INSTANCES, "all"],
        default="all",
        help="which instance family to time",
    )
    ap.add_argument(
        "--soft-factor",
        type=float,
        default=1.5,
        help="smoke gate: fail when auto is slower than dense by this factor",
    )
    ap.add_argument("--out", type=Path, default=None)
    args = ap.parse_args(argv)

    n_tasks = args.n_tasks or (60 if args.smoke else 500)
    reps = args.reps or (1 if args.smoke else 3)
    out = args.out or (
        Path("results/bench")
        / ("BENCH_optimal_smoke.json" if args.smoke else "BENCH_optimal.json")
    )
    names = list(INSTANCES) if args.instance == "all" else [args.instance]

    print(f"Newton-kernel benchmark: n={n_tasks}, m={args.m}, reps={reps}")
    instances: dict[str, dict] = {}
    regressions: list[str] = []
    for name in names:
        rep, regs = run_instance(name, n_tasks, args.m, args.seed, reps)

        # speed gate: a hard failure only in smoke mode, and only at the
        # soft factor — CI runners are noisy and small instances amortize
        # less setup; the overlap-heavy family is intrinsically bounded by
        # the dense/Schur factor-cost ratio, so parity-ish is acceptable
        speedup = rep["speedup_auto_vs_dense"]
        if speedup * args.soft_factor < 1.0:
            regs.append(
                f"{name}: auto kernel {1 / speedup:.2f}x slower than dense "
                f"(soft threshold {args.soft_factor}x)"
            )
        elif speedup < 1.0:
            print(
                f"warning: {name}: auto below parity ({speedup:.2f}x) but "
                f"inside the {args.soft_factor}x soft threshold"
            )
        instances[name] = rep
        regressions.extend(regs)

    report = {
        "benchmark": "optimal-newton-kernel",
        "mode": "smoke" if args.smoke else "full",
        "soft_factor": args.soft_factor,
        "instances": instances,
        "headline_speedup_auto_vs_dense": max(
            r["speedup_auto_vs_dense"] for r in instances.values()
        ),
        "regressions": regressions,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, rep in instances.items():
        print(
            f"{name}: auto ({rep['kernels']['auto']['kernel']}) speedup vs "
            f"dense {rep['speedup_auto_vs_dense']:.2f}x; max rel energy err "
            f"{rep['max_rel_energy_err']:.2e}"
        )
    print(f"wrote {out}")
    if regressions and args.smoke:
        for msg in regressions:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
