"""Benchmark regenerating Fig. 7: NEC vs dynamic exponent alpha (p0 = 0).

Paper shape: even-allocation schedules degrade with alpha (the over-speed
penalty is ~(n_j/m)^(alpha-1)); F2 stays flat near 1.1.
"""

from repro.experiments import fig7

from .conftest import report, reps, workers


def test_fig7_nec_vs_alpha(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig7.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig7")
    f2 = result.series["F2"]
    i1 = result.series["I1"]
    assert all(a <= b for a, b in zip(f2, i1)), "F2 must beat I1 at every alpha"
    assert max(f2) < 1.3
    # even-allocation penalty grows with alpha
    assert i1[-1] >= i1[0] - 0.1
