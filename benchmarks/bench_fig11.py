"""Benchmark regenerating Fig. 11: the XScale practical-processor run.

Paper shape: practical F2 stays closest to optimal; I1/F1's deadline-miss
probability is significant under contention, I2's non-negligible, F2's
negligible.
"""

from repro.experiments import fig11

from .conftest import report, reps, workers


def test_fig11_xscale_practical(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig11.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig11")

    f2 = result.series["F2"]
    f1 = result.series["F1"]
    assert all(a <= b + 0.05 for a, b in zip(f2, f1))

    miss = result.extra_series
    # F2 misses no more often than I1 at every load level
    assert all(a <= b + 1e-9 for a, b in zip(miss["miss_F2"], miss["miss_I1"]))
    # and F2's overall miss probability is negligible vs I1's
    assert sum(miss["miss_F2"]) <= sum(miss["miss_I1"])
