"""Serving-layer benchmark: micro-batching and plan-cache throughput.

Boots the real daemon in-process four times — {batching off, on} ×
{cache cold, warm} — and drives each from a *separate client process*
(``python -m repro loadgen --json``), so client-side HTTP work never
shares the server's event loop and the numbers reflect the daemon alone.
The workload is 1000 mixed requests (95% ``/schedule``, 5% ``/admit``)
against a 1-worker process pool.  Cold runs use 1000 distinct task sets
(every request misses the plan cache); warm runs cycle 25, so
steady-state traffic is cache hits that never enter the pool.
``/optimal`` is exercised by the e2e suite but kept out of this timed
comparison: one exact convex solve costs ~40× a heuristic solve, so any
share of it measures the solver, not the serving layer.

Why batching wins: without it every request is its own executor
submission — pickle, queue, feeder/result-thread wakeups, a storm of
context switches interleaved with HTTP handling — and its own solver
pass, paying the fixed pipeline setup per request.  With a ~4 ms window
the same traffic reaches the pool as a few worker-sized chunks, and jobs
sharing a platform are *fused* into one vectorized pipeline pass (see
``repro.service.pool._solve_fused``), amortizing both costs across the
batch.

Asserts the acceptance targets — batching ≥ 2× unbatched RPS on the cold
workload; warm cache beats batched-cold with >90% hits while mostly
bypassing the pool (dispatch counting) — and archives one CSV row per
scenario under ``results/bench/service_throughput.csv``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path

from repro.service import SchedulingService, ServiceConfig
from repro.service.loadgen import run_loadgen

_REQUESTS = 1000
_CONCURRENCY = 64
_N_TASKS = 3
_WORKERS = 1
_ADMIT_FRAC = 0.05

_SRC = str(Path(__file__).resolve().parent.parent / "src")


async def _client_subprocess(port: int, *, n: int, unique: int, **flags) -> dict:
    """Run ``repro loadgen --json`` in its own process and parse its stats."""
    args = [
        sys.executable, "-m", "repro", "loadgen", "--json",
        "--port", str(port), "-n", str(n), "-c", str(_CONCURRENCY),
        "--n-tasks", str(_N_TASKS), "--unique", str(unique), "-m", "2",
    ]
    for flag, value in flags.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = await asyncio.create_subprocess_exec(
        *args, env=env,
        stdout=asyncio.subprocess.PIPE, stderr=asyncio.subprocess.PIPE,
    )
    out, err = await proc.communicate()
    if proc.returncode != 0:
        raise RuntimeError(f"loadgen failed: {err.decode()[-500:]}")
    return json.loads(out.decode())


def _scenario(name: str, *, window: float, unique: int) -> dict:
    config = ServiceConfig(
        port=0,
        workers=_WORKERS,
        batch_window=window,
        batch_max=_CONCURRENCY,
        cache_size=1024,
        max_inflight=4 * _CONCURRENCY,
        log_interval=0,
    )

    async def run():
        service = SchedulingService(config)
        await service.start()
        try:
            # warm-up in-process: spin up pool workers (and for warm runs,
            # prime the cache with the client's task-set pool, seed 0)
            await run_loadgen(
                "127.0.0.1", service.port,
                n_requests=min(unique, 50), concurrency=8, n_tasks=_N_TASKS,
                unique=unique, m=2, include_schedule=False, seed=0,
            )
            stats = await _client_subprocess(
                service.port, n=_REQUESTS, unique=unique,
                admit_frac=_ADMIT_FRAC, seed=0,
            )
            stats["cache_hit_rate"] = round(service.cache.hit_rate, 4)
            stats["pool_dispatches"] = service.dispatcher.dispatch_count
            stats["batches"] = service.batcher.batches
            return stats
        finally:
            await service.stop()

    stats = asyncio.run(run())
    stats["scenario"] = name
    return stats


def test_service_throughput(results_dir):
    rows = [
        _scenario("unbatched-cold", window=0.0, unique=_REQUESTS),
        _scenario("batched-cold", window=0.004, unique=_REQUESTS),
        _scenario("unbatched-warm", window=0.0, unique=25),
        _scenario("batched-warm", window=0.004, unique=25),
    ]
    for r in rows:
        assert r["ok"] == _REQUESTS, f"{r['scenario']}: {r['statuses']}"
        assert r["errors"] == 0

    header = (
        "scenario,requests,concurrency,workers,rps,p50_ms,p95_ms,p99_ms,"
        "cache_hit_rate,pool_dispatches,batches"
    )
    lines = [header]
    for r in rows:
        lat = r["latency_ms"]
        lines.append(
            f"{r['scenario']},{r['requests']},{r['concurrency']},{_WORKERS},"
            f"{r['rps']},{lat['p50']},{lat['p95']},{lat['p99']},"
            f"{r['cache_hit_rate']},{r['pool_dispatches']},{r['batches']}"
        )
    csv_text = "\n".join(lines) + "\n"
    (results_dir / "service_throughput.csv").write_text(csv_text)
    print("\n" + csv_text)

    by_name = {r["scenario"]: r for r in rows}
    speedup = by_name["batched-cold"]["rps"] / by_name["unbatched-cold"]["rps"]
    print(f"batching speedup (cold cache): {speedup:.2f}x")
    assert speedup >= 2.0, f"micro-batching speedup {speedup:.2f}x < 2x target"

    # warm cache must beat the batched cold run and mostly skip the pool:
    # the hit path's pool bypass is the dispatch-count drop, not an RPS
    # multiplier (batched-cold is already within ~2x of the serving floor)
    warm, cold = by_name["batched-warm"], by_name["batched-cold"]
    assert warm["rps"] > cold["rps"]
    assert warm["cache_hit_rate"] > 0.9
    assert warm["pool_dispatches"] < cold["pool_dispatches"] / 2
