"""Benchmark regenerating Table II: NEC of F1/F2 over the (alpha, p0) grid.

The full 11x11 grid at 100 reps is the paper's heaviest experiment; the
benchmark default uses a coarser 3x3 grid (corners + center) which already
exhibits the table's shape — set REPRO_FULL=1 for the complete grid.
"""

import os

import numpy as np

from repro.experiments import table2

from .conftest import reps, workers


def _grids():
    if os.environ.get("REPRO_FULL") == "1":
        return table2.ALPHA_VALUES, table2.P0_VALUES
    return (2.0, 2.5, 3.0), (0.0, 0.1, 0.2)


def test_table2_alpha_p0_grid(benchmark, results_dir):
    alphas, p0s = _grids()
    result = benchmark.pedantic(
        lambda: table2.run(
            reps=reps(), seed=0, workers=workers(), alphas=alphas, p0s=p0s
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "table2.csv").write_text(result.to_csv())
    benchmark.extra_info["nec_f2_mean"] = float(result.nec_f2.mean())

    # paper shape: F2 <= F1 everywhere; F2 around 1.0-1.2 throughout
    assert np.all(result.nec_f2 <= result.nec_f1 + 0.05)
    assert result.nec_f2.max() < 1.3
    # F2 improves (or stays flat) as p0 grows, per the paper's discussion
    assert np.mean(result.nec_f2[:, -1]) <= np.mean(result.nec_f2[:, 0]) + 0.05
