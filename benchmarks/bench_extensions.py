"""Benchmarks for the extension experiments (DESIGN.md ablation index).

These are the design-choice ablations beyond the paper's own figures:
allocation weighting, DVFS switching robustness, discrete execution
strategies, and the online re-planning premium.
"""

from repro.experiments import (
    ablation_der,
    ablation_online,
    ablation_switching,
    ablation_two_level,
)

from .conftest import reps


def test_ablation_allocation_weights(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablation_der.run(reps=max(reps() * 3, 15), seed=0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "ablation_der.csv").write_text(result.to_csv())
    benchmark.extra_info["mean_nec"] = result.mean_nec

    assert result.mean_nec["der"] <= result.mean_nec["even"]
    assert result.mean_nec["der"] <= result.mean_nec["work"]


def test_ablation_switching_costs(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablation_switching.run(reps=max(reps() * 2, 10), seed=0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "ablation_switching.csv").write_text(result.to_csv())
    benchmark.extra_info["mean_switches"] = result.mean_switches

    assert result.ranking_preserved(), "F2 < F1 must survive switching costs"


def test_ablation_two_level_vs_round_up(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablation_two_level.run(reps=max(reps() * 2, 10), seed=0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "ablation_two_level.csv").write_text(result.to_csv())

    # the honest finding: round-up wins on the (non-convex) XScale table
    import numpy as np

    assert np.all(result.round_up <= result.two_level * (1 + 1e-9))


def test_ablation_online_premium(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablation_online.run(reps=max(reps(), 5), seed=0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    (results_dir / "ablation_online.csv").write_text(result.to_csv())
    benchmark.extra_info["premium"] = [float(p) for p in result.online_premium]

    import numpy as np

    # the online premium exists but stays moderate
    assert np.all(result.online_premium >= 1.0 - 0.02)
    assert np.all(result.online_premium < 2.0)
