"""Incremental-session benchmark: delta re-planning vs full rebuild.

Streams a paper-style aperiodic workload through the online scheduler
twice per allocation policy — once with the original full-rebuild engine
(a fresh :class:`SubintervalScheduler` at every release instant) and once
with the incremental :class:`ScheduleSession` engine — and emits a
machine-readable report (``results/bench/BENCH_incremental.json`` for the
archived full run, ``BENCH_incremental_smoke.json`` for smoke runs):

* wall time per engine and the session/rebuild speedup,
* re-plan events per second for each engine,
* the fraction of subinterval columns the session actually recomputed
  (the rebuild engine's ratio is 1 by construction),
* the energies of both executed schedules, which must agree exactly —
  the session's plan matches the batch rebuild bit-for-bit.

Two modes:

* ``--smoke`` — a small stream with a *soft* speedup gate (default 2×,
  lenient for noisy runners); any energy disagreement fails hard.
* default (full) — the headline n=1000 measurement behind the ≥5×
  acceptance gate; the rebuild engine alone takes minutes, so run
  manually and commit the JSON.

Usage::

    python -m benchmarks.bench_incremental --smoke
    python -m benchmarks.bench_incremental --n-tasks 1000
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import OnlineSubintervalScheduler
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig

_POWER = PolynomialPower(alpha=3.0, static=0.1)
METHODS = ("even", "der")


def _instance(n_tasks: int, seed: int):
    rng = np.random.default_rng(seed)
    return paper_workload(rng, PaperWorkloadConfig(n_tasks=n_tasks))


def _time_engine(tasks, m: int, method: str, engine: str) -> dict:
    t0 = time.perf_counter()
    res = OnlineSubintervalScheduler(
        tasks, m, _POWER, method=method, engine=engine
    ).run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "replans": res.replans,
        "events_per_s": res.replans / wall if wall > 0 else float("inf"),
        "energy": float(res.energy),
        "touched_subintervals": res.touched_subintervals,
        "total_subintervals": res.total_subintervals,
        "touched_ratio": res.touched_ratio,
    }


def run_method(
    tasks, m: int, method: str, gate: float
) -> tuple[dict, list[str]]:
    """Benchmark one policy; returns (report, regression messages)."""
    session = _time_engine(tasks, m, method, "session")
    print(
        f"  {method:>4s} session: {session['wall_s']:8.2f}s, "
        f"{session['events_per_s']:7.1f} replans/s, "
        f"touched={session['touched_ratio']:.3f}",
        flush=True,
    )
    rebuild = _time_engine(tasks, m, method, "rebuild")
    print(
        f"  {method:>4s} rebuild: {rebuild['wall_s']:8.2f}s, "
        f"{rebuild['events_per_s']:7.1f} replans/s",
        flush=True,
    )
    speedup = rebuild["wall_s"] / session["wall_s"]
    d_energy = abs(session["energy"] - rebuild["energy"])
    print(f"  {method:>4s} speedup: {speedup:.1f}x, |dE|={d_energy:.3e}", flush=True)
    report = {
        "session": session,
        "rebuild": rebuild,
        "speedup": speedup,
        "abs_energy_diff": d_energy,
    }
    regressions: list[str] = []
    if d_energy > 0.0:
        regressions.append(
            f"{method}: session energy {session['energy']!r} != "
            f"rebuild energy {rebuild['energy']!r}"
        )
    if speedup < gate:
        regressions.append(
            f"{method}: speedup {speedup:.2f}x below the {gate:.0f}x gate"
        )
    return report, regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small soft-gated run")
    ap.add_argument("--n-tasks", type=int, default=None)
    ap.add_argument("--m", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--gate", type=float, default=None,
        help="minimum session/rebuild speedup (default: 2 smoke, 5 full)",
    )
    ap.add_argument("--out", type=Path, default=None)
    args = ap.parse_args(argv)

    n_tasks = args.n_tasks or (300 if args.smoke else 1000)
    gate = args.gate if args.gate is not None else (2.0 if args.smoke else 5.0)
    tasks = _instance(n_tasks, args.seed)
    print(f"online stream: n={n_tasks}, m={args.m}, seed={args.seed}", flush=True)

    methods = {}
    regressions: list[str] = []
    for method in METHODS:
        methods[method], probs = run_method(tasks, args.m, method, gate)
        regressions.extend(probs)

    report = {
        "benchmark": "incremental-session",
        "mode": "smoke" if args.smoke else "full",
        "n_tasks": n_tasks,
        "m": args.m,
        "seed": args.seed,
        "speedup_gate": gate,
        "headline_speedup": max(m["speedup"] for m in methods.values()),
        "methods": methods,
    }
    out = args.out
    if out is None:
        stem = "BENCH_incremental_smoke" if args.smoke else "BENCH_incremental"
        out = Path(__file__).resolve().parent.parent / "results" / "bench" / f"{stem}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}", flush=True)

    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
