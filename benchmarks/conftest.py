"""Shared benchmark utilities.

Every figure benchmark runs its experiment once (``benchmark.pedantic`` with
one round — the payload is a Monte-Carlo sweep, not a microsecond kernel),
prints the same rows the paper's figure/table shows, archives CSV + SVG
under ``results/``, and attaches the series to ``extra_info`` so the JSON
output of pytest-benchmark carries the reproduction data.

Rep counts default to a *benchmark-friendly* size; set the environment
variable ``REPRO_FULL=1`` to run the paper's full 100 replications.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# benchmark artifacts go to their own subdirectory so reduced-rep runs never
# clobber the archived full-scale results in results/
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results" / "bench"


def reps(default_small: int = 5, full: int = 100) -> int:
    """Benchmark replication count (REPRO_FULL=1 switches to paper scale)."""
    return full if os.environ.get("REPRO_FULL") == "1" else default_small


def workers() -> int:
    """Worker processes for sweeps (REPRO_WORKERS overrides)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(int(env), 1)
    return 1


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def archive_sweep(result, results_dir: Path, stem: str) -> None:
    """Write a SweepResult's CSV and SVG to the results directory."""
    (results_dir / f"{stem}.csv").write_text(result.to_csv())
    (results_dir / f"{stem}.svg").write_text(result.to_svg())


def report(benchmark, result, results_dir: Path, stem: str) -> None:
    """Print the paper-style rows and archive artifacts."""
    text = result.format()
    print("\n" + text)
    archive_sweep(result, results_dir, stem)
    benchmark.extra_info["series"] = result.series
    if result.extra_series:
        benchmark.extra_info["extra_series"] = result.extra_series
    benchmark.extra_info["x_values"] = list(result.x_values)
