"""Micro-benchmarks on the paper's worked examples (Figs. 1–5, §II, §V-D).

These are true pytest-benchmark kernels (many rounds) and double as golden
regression checks against the published numbers.
"""

import pytest

from repro.baselines import yds_schedule
from repro.core import SubintervalScheduler
from repro.optimal import solve_optimal
from repro.power import PolynomialPower
from repro.workloads import (
    SIX_TASK_EXPECTED,
    intro_example,
    motivational_power,
    six_task_example,
)


def test_six_task_pipeline_f2(benchmark):
    """§V-D: full DER pipeline on the six-task quad-core example."""
    tasks = six_task_example()
    power = PolynomialPower(alpha=3.0, static=0.0)

    def run():
        return SubintervalScheduler(tasks, 4, power).final("der").energy

    energy = benchmark(run)
    assert energy == pytest.approx(SIX_TASK_EXPECTED["energy_F2"], abs=1e-3)


def test_six_task_pipeline_f1(benchmark):
    """§V-D: full even-allocation pipeline on the six-task example."""
    tasks = six_task_example()
    power = PolynomialPower(alpha=3.0, static=0.0)

    def run():
        return SubintervalScheduler(tasks, 4, power).final("even").energy

    energy = benchmark(run)
    assert energy == pytest.approx(SIX_TASK_EXPECTED["energy_F1"], abs=1e-3)


def test_yds_intro_example(benchmark):
    """Figs. 1–2: YDS on the three-task uniprocessor example."""
    tasks = intro_example()

    def run():
        return yds_schedule(tasks).energy

    energy = benchmark(run)
    assert energy == pytest.approx(4 * 1.0 + 8 * 0.75**3)


def test_motivational_optimal(benchmark):
    """§II: the KKT example solved by the interior-point method."""
    tasks = intro_example()
    power = motivational_power()

    def run():
        return solve_optimal(tasks, 2, power).energy

    energy = benchmark(run)
    assert energy == pytest.approx(155 / 32 + 0.2, rel=1e-6)
