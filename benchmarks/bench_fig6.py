"""Benchmark regenerating Fig. 6: NEC vs static power p0.

Paper shape to verify: I1/F1 well above optimal across the range (worst at
low p0); I2/F2 stable; F2 within ~1.0–1.15 of optimal, improving as p0
grows.
"""

from repro.experiments import fig6

from .conftest import report, reps, workers


def test_fig6_nec_vs_static_power(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig6.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig6")
    f2 = result.series["F2"]
    f1 = result.series["F1"]
    assert all(a <= b + 0.05 for a, b in zip(f2, f1)), "F2 must not exceed F1"
    assert max(f2) < 1.3, "F2 should stay near-optimal across the p0 sweep"
    # paper: NEC of F2 decreases as static power grows
    assert f2[-1] <= f2[0] + 0.05
