"""Benchmark regenerating Fig. 9: NEC vs task-intensity generation range.

Paper shape: F2 stays flat and near-optimal across [x, 1.0] ranges while the
other schedules fluctuate.
"""

import numpy as np

from repro.experiments import fig9

from .conftest import report, reps, workers


def test_fig9_nec_vs_intensity_range(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig9.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig9")
    f2 = np.array(result.series["F2"])
    i1 = np.array(result.series["I1"])
    assert f2.max() < 1.25, "F2 stays near-optimal over the whole range"
    # F2 is the most stable series (paper's qualitative claim)
    assert f2.std() <= i1.std() + 1e-9
