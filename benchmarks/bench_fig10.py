"""Benchmark regenerating Fig. 10: NEC vs number of tasks.

Paper shape: with n close to m everything is near-ideal; contention (and the
F1/F2 gap) grows with n while F2 stays closest to optimal.
"""

from repro.experiments import fig10

from .conftest import report, reps, workers


def test_fig10_nec_vs_task_count(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig10.run(reps=reps(), seed=0, workers=workers()),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result, results_dir, "fig10")
    f2 = result.series["F2"]
    f1 = result.series["F1"]
    assert f2[0] < 1.1, "n=5 on 4 cores is nearly uncontended"
    assert all(a <= b + 0.05 for a, b in zip(f2, f1))
