"""Micro-benchmark: the vectorized allocation/packing hot path.

Plan assembly and slot construction used to loop over subintervals in
Python (one ``allocate_der``/``wrap_schedule`` call per column).  Both now
run as batched NumPy passes; the ``*_scalar`` reference methods keep the
original loops alive as the oracle.  This benchmark times both on one
large instance (n = 500 tasks → ≈1000 subintervals, m = 16), checks the
results agree to 1e-9, asserts the ≥5× speedup target, and archives a CSV
row per stage under ``results/bench/``.
"""

import time

import numpy as np

from repro.core import SubintervalScheduler, Timeline, build_allocation_plan, solve_ideal
from repro.power import PolynomialPower
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig

_POWER = PolynomialPower(alpha=3.0, static=0.1)
_N_TASKS = 500
_M = 16


def _best_of(fn, k: int) -> float:
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_allocation_hotpath_speedup(results_dir):
    rng = np.random.default_rng(0)
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=_N_TASKS))
    tl = Timeline(tasks)
    ideal = solve_ideal(tasks, _POWER)
    assert len(tl) > 900  # the N ≈ 1000 regime the issue targets

    # -- stage 1: allocation-plan assembly (Algorithm 2 over all columns) --
    vec_plan = build_allocation_plan(tl, _M, "der", ideal=ideal)
    ref_plan = build_allocation_plan(tl, _M, "der_scalar", ideal=ideal)
    np.testing.assert_allclose(vec_plan.x, ref_plan.x, rtol=1e-9, atol=1e-12)

    t_vec_plan = _best_of(
        lambda: build_allocation_plan(tl, _M, "der", ideal=ideal), 5
    )
    t_ref_plan = _best_of(
        lambda: build_allocation_plan(tl, _M, "der_scalar", ideal=ideal), 3
    )

    # -- stage 2: slot construction (Algorithm 1 over all columns) --------
    # the production path keeps slots as flat arrays (PackedSlots); the
    # scalar loop materializes Slot objects, which is what it always did
    sch = SubintervalScheduler(tasks, _M, _POWER)
    vec_slots = sch._slots_flat(vec_plan).to_slot_lists()
    ref_slots = sch._slots_scalar(vec_plan)
    assert [len(s) for s in vec_slots] == [len(s) for s in ref_slots]
    for g_slots, w_slots in zip(vec_slots, ref_slots):
        for g, w in zip(g_slots, w_slots):
            assert (g.task_id, g.core) == (w.task_id, w.core)
            assert abs(g.start - w.start) < 1e-9
            assert abs(g.end - w.end) < 1e-9

    t_vec_pack = _best_of(lambda: sch._slots_flat(vec_plan), 5)
    t_ref_pack = _best_of(lambda: sch._slots_scalar(vec_plan), 3)

    rows = [
        ("plan_assembly_der", t_ref_plan, t_vec_plan),
        ("slot_packing", t_ref_pack, t_vec_pack),
        (
            "combined",
            t_ref_plan + t_ref_pack,
            t_vec_plan + t_vec_pack,
        ),
    ]
    lines = ["stage,n_tasks,n_subintervals,m,scalar_s,vectorized_s,speedup"]
    for stage, ref, vec in rows:
        lines.append(
            f"{stage},{_N_TASKS},{len(tl)},{_M},{ref:.6f},{vec:.6f},{ref / vec:.2f}"
        )
    (results_dir / "allocation_hotpath.csv").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    combined = (t_ref_plan + t_ref_pack) / (t_vec_plan + t_vec_pack)
    assert combined >= 5.0, (
        f"hot path speedup {combined:.1f}x below the 5x target "
        f"(plan {t_ref_plan / t_vec_plan:.1f}x, pack {t_ref_pack / t_vec_pack:.1f}x)"
    )
