#!/usr/bin/env python
"""Every worked example in the paper, reproduced number by number.

* Figs. 1–2: YDS on the three-task uniprocessor instance.
* §II: the same instance on two cores with static power — the KKT optimum
  155/32 (+ static term), recovered by our interior-point solver.
* Fig. 3: why static power means you shouldn't always stretch.
* §V-D / Figs. 4–5: the six-task quad-core example — even vs DER-based
  allocation, final energies 33.0642 vs 31.8362, with Gantt charts.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import PolynomialPower, SubintervalScheduler, solve_optimal
from repro.analysis import render_gantt
from repro.baselines import yds_schedule
from repro.core import best_single_frequency
from repro.workloads import (
    fig3_power,
    intro_example,
    motivational_power,
    six_task_example,
)


def figs_1_2() -> None:
    print("=" * 72)
    print("Figs. 1-2: YDS on tasks (R,D,C) = (0,12,4), (2,10,2), (4,8,4)")
    print("=" * 72)
    res = yds_schedule(intro_example())
    for k, ci in enumerate(res.critical_intervals, 1):
        names = ", ".join(f"τ{t + 1}" for t in ci.task_ids)
        print(
            f"  step {k}: critical interval [{ci.start:g}, {ci.end:g}] "
            f"at speed {ci.speed:g} ({names})"
        )
    print(f"  YDS energy (p=f^3): {res.energy:g}")
    print(render_gantt(res.schedule, width=60, show_legend=False))


def section_2() -> None:
    print("=" * 72)
    print("§II: same tasks, 2 cores, p(f) = f^3 + 0.01 — the KKT optimum")
    print("=" * 72)
    sol = solve_optimal(intro_example(), 2, motivational_power())
    x = sol.available_times
    print(f"  optimal total times A = {np.round(x, 4)}  (paper: 32/3, 16/3, 4)")
    print(
        f"  optimal energy = {sol.energy:.6f}  "
        f"(paper's dynamic part 155/32 = {155 / 32:.6f}, + static 0.2)"
    )


def fig_3() -> None:
    print("=" * 72)
    print("Fig. 3: with p(f) = f^2 + 0.25, stretching is not always best")
    print("=" * 72)
    power = fig3_power()
    e_stretch = power.energy(2.0, 0.4)
    f_best, e_best = best_single_frequency(2.0, 5.0, power)
    print(f"  use all 5 time units (f=0.4):  E = {e_stretch:.4g}")
    print(f"  optimal (f={f_best:g}, 4 time units): E = {e_best:.4g}")


def section_5d() -> None:
    print("=" * 72)
    print("§V-D / Figs. 4-5: six tasks on a quad-core, p(f) = f^3")
    print("=" * 72)
    tasks = six_task_example()
    power = PolynomialPower(alpha=3.0, static=0.0)
    s = SubintervalScheduler(tasks, 4, power)

    print(f"  ideal frequencies f^O: {np.round(s.ideal.frequencies, 4)}")
    heavy = s.timeline.heavy(4)
    print(
        "  heavily overlapped subintervals: "
        + ", ".join(f"[{h.start:g},{h.end:g}]" for h in heavy)
    )

    der = s.plan("der")
    for h in heavy:
        alloc = {
            f"τ{t + 1}": round(float(der.x[t, h.index]), 4) for t in h.task_ids
        }
        print(f"  DER allocation in [{h.start:g},{h.end:g}]: {alloc}")

    f1, f2 = s.final("even"), s.final("der")
    print(f"  E(S^F1) = {f1.energy:.4f}   (paper: 33.0642)")
    print(f"  E(S^F2) = {f2.energy:.4f}   (paper: 31.8362)")

    opt = solve_optimal(tasks, 4, power)
    print(f"  optimal = {opt.energy:.4f}  ->  NEC of F2 = {f2.energy / opt.energy:.4f}")
    print("\n  S^F2 schedule:")
    print(render_gantt(f2.schedule, width=66, show_legend=False))


if __name__ == "__main__":
    figs_1_2()
    section_2()
    fig_3()
    section_5d()
