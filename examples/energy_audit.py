#!/usr/bin/env python
"""Scenario: auditing where a schedule's energy actually goes.

Takes one contended workload, schedules it with S^F2, and produces the full
audit a systems engineer would want before deployment:

* the exact total-power profile P(t) (what a power meter would record),
  with the ∫P dt = energy cross-check and peak/average power,
* per-task and per-core energy breakdowns,
* DVFS transition counts and their hypothetical cost,
* a flow-based feasibility probe: how much *extra* time could each task
  still be granted before the platform saturates (capacity headroom).

Run:  python examples/energy_audit.py
"""

from pathlib import Path

import numpy as np

from repro import PolynomialPower, SubintervalScheduler
from repro.analysis import format_table
from repro.optimal import realize_demands
from repro.power import TransitionModel, analyze_transitions
from repro.sim import execute_schedule, power_trace
from repro.workloads import paper_workload
from repro.workloads.generator import PaperWorkloadConfig


def main() -> None:
    rng = np.random.default_rng(99)
    tasks = paper_workload(rng, PaperWorkloadConfig(n_tasks=16))
    power = PolynomialPower(alpha=3.0, static=0.1)
    m = 4

    result = SubintervalScheduler(tasks, m, power).final("der")
    sched = result.schedule

    # --- power profile ---------------------------------------------------------
    trace = power_trace(sched)
    assert abs(trace.energy - sched.total_energy()) < 1e-9 * sched.total_energy()
    print(f"energy:        {sched.total_energy():.3f}")
    print(f"peak power:    {trace.peak_power:.3f}")
    print(f"average power: {trace.average_power:.3f}")
    print(f"power steps:   {len(trace.levels)} pieces over "
          f"[{trace.times[0]:g}, {trace.times[-1]:g}]")

    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    (out / "energy_audit_profile.svg").write_text(
        trace.to_svg(title="S^F2 total power profile")
    )
    print(f"profile SVG -> {out / 'energy_audit_profile.svg'}")

    # --- breakdowns ---------------------------------------------------------------
    report = execute_schedule(sched)
    rows = [
        [f"M{k + 1}", report.per_core_energy[k], sched.busy_time()[k]]
        for k in range(m)
    ]
    print()
    print(format_table(["core", "energy", "busy time"], rows, title="per-core audit"))

    top = np.argsort(sched.energy_breakdown())[::-1][:5]
    rows = [
        [
            f"τ{int(i) + 1}",
            float(sched.energy_breakdown()[i]),
            float(np.asarray(result.frequencies)[i]),
        ]
        for i in top
    ]
    print(format_table(["task", "energy", "frequency"], rows, title="top-5 energy tasks"))

    # --- switching -----------------------------------------------------------------
    tr = analyze_transitions(sched, TransitionModel(switch_time=0.05, switch_energy=0.05))
    print(
        f"DVFS switches: {tr.total_switches} "
        f"(overhead at 0.05/switch: {tr.overhead_fraction:.2%})"
    )

    # --- capacity headroom -----------------------------------------------------------
    demands = result.plan.available_times
    for factor in (1.0, 1.2, 1.5, 2.0):
        feasible = realize_demands(tasks, m, np.minimum(demands * factor, tasks.windows)).feasible
        print(f"grant {factor:.1f}x current available time: "
              f"{'feasible' if feasible else 'saturated'}")


if __name__ == "__main__":
    main()
