#!/usr/bin/env python
"""Quickstart: schedule a handful of aperiodic tasks energy-efficiently.

Walks the public API end to end:

1. define tasks (release, deadline, execution requirement),
2. pick a platform power model,
3. run the paper's DER-based subinterval scheduler (S^F2),
4. compare against the exact convex-optimal baseline,
5. validate + replay the schedule on the discrete-event simulator,
6. print an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from repro import (
    PolynomialPower,
    SubintervalScheduler,
    TaskSet,
    execute_schedule,
    solve_optimal,
    validate_schedule,
)
from repro.analysis import render_gantt


def main() -> None:
    # (release, deadline, work): work is cycles — a task with work 8 running
    # at frequency 0.8 takes 10 time units.
    tasks = TaskSet.from_tuples(
        [
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ]
    )
    # p(f) = f^3 + 0.05 : cube-rule dynamic power plus a little static power
    power = PolynomialPower(alpha=3.0, static=0.05)
    m = 4  # quad-core processor

    # --- the paper's lightweight scheduler ----------------------------------
    scheduler = SubintervalScheduler(tasks, m, power)
    result = scheduler.final("der")  # S^F2, the recommended method
    print(f"S^F2 energy:          {result.energy:.4f}")

    # --- exact optimal baseline (convex program, Theorem 1) ------------------
    optimal = solve_optimal(tasks, m, power)
    print(f"optimal energy:       {optimal.energy:.4f}")
    print(f"NEC (S^F2 / optimal): {result.energy / optimal.energy:.4f}")

    # --- check and replay -----------------------------------------------------
    violations = validate_schedule(result.schedule)
    assert not violations, violations
    report = execute_schedule(result.schedule)
    assert report.all_deadlines_met
    print(f"simulated energy:     {report.total_energy:.4f} (replay matches)")
    print(f"per-core energy:      {[round(e, 3) for e in report.per_core_energy]}")

    print("\nSchedule:")
    print(render_gantt(result.schedule, width=72))


if __name__ == "__main__":
    main()
