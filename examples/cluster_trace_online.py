#!/usr/bin/env python
"""Scenario: replaying a cluster trace with online (non-clairvoyant) DVFS.

Puts three extensions together on one realistic pipeline:

1. **SWF import** — jobs from a (synthetic, SWF-formatted) cluster trace
   become aperiodic tasks: submit time → release, run time → work,
   requested wall-clock → deadline.
2. **Online scheduling** — the scheduler only learns each job at its
   release and re-plans on every arrival, exactly as a deployed governor
   would.
3. **Transition accounting** — the resulting schedule's DVFS switches are
   counted and costed to check the free-switching assumption.

Run:  python examples/cluster_trace_online.py
"""

import numpy as np

from repro import PolynomialPower, solve_optimal
from repro.analysis import bootstrap_ci, format_table
from repro.core import OnlineSubintervalScheduler, SubintervalScheduler
from repro.power import TransitionModel, analyze_transitions
from repro.workloads.swf import SwfJob, taskset_from_swf, write_swf


def synthetic_trace(rng: np.random.Generator, n_jobs: int = 18) -> str:
    """A bursty SWF trace: two submission waves of mixed-size jobs."""
    jobs = []
    for i in range(n_jobs):
        wave = 0.0 if i < n_jobs // 2 else 400.0
        submit = wave + float(rng.uniform(0, 60))
        run = float(rng.uniform(30, 120))
        request = run * float(rng.uniform(1.5, 4.0))
        jobs.append(
            SwfJob(
                job_id=i + 1,
                submit_time=round(submit, 1),
                run_time=round(run, 1),
                n_procs=int(rng.integers(1, 4)),
                requested_time=round(request, 1),
            )
        )
    return write_swf(jobs, header="synthetic bursty trace")


def main() -> None:
    rng = np.random.default_rng(42)
    trace = synthetic_trace(rng)
    tasks = taskset_from_swf(trace, slack_factor=2.0)
    power = PolynomialPower(alpha=3.0, static=0.1)
    m = 4

    print(f"trace: {len(tasks)} jobs over [{tasks.horizon[0]:g}, {tasks.horizon[1]:g}] s")

    offline = SubintervalScheduler(tasks, m, power).final("der")
    online = OnlineSubintervalScheduler(tasks, m, power).run()
    optimal = solve_optimal(tasks, m, power)

    rows = [
        ["exact optimum", optimal.energy, 1.0, "-"],
        ["offline S^F2", offline.energy, offline.energy / optimal.energy, "-"],
        [
            "online S^F2",
            online.energy,
            online.energy / optimal.energy,
            online.replans,
        ],
    ]
    print(
        format_table(
            ["scheduler", "energy", "NEC", "re-plans"],
            rows,
            title=f"Cluster trace on {m} cores, p(f)=f^3+0.1",
        )
    )

    # --- how real is the free-switching assumption here? ----------------------
    model = TransitionModel(switch_time=0.5, switch_energy=0.2)
    for name, sched in (("offline", offline.schedule), ("online", online.schedule)):
        rep = analyze_transitions(sched, model)
        print(
            f"{name}: {rep.total_switches} switches, overhead "
            f"{rep.overhead_fraction:.2%} of planned energy, "
            f"{rep.unabsorbable_switches} not absorbable by idle gaps"
        )

    # --- online premium with a confidence interval -----------------------------
    premiums = []
    for seed in range(12):
        r = np.random.default_rng(seed)
        t = taskset_from_swf(synthetic_trace(r), slack_factor=2.0)
        off = SubintervalScheduler(t, m, power).final("der").energy
        on = OnlineSubintervalScheduler(t, m, power).run().energy
        premiums.append(on / off)
    ci = bootstrap_ci(premiums, seed=0)
    print(f"\nonline/offline energy premium over 12 traces: {ci}")


if __name__ == "__main__":
    main()
