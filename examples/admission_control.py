#!/usr/bin/env python
"""Scenario: admitting real-time jobs onto a frequency-capped platform.

The paper's ideal cores have no top speed; real silicon does (§VI-C's
XScale tops out at 1 GHz).  Under a frequency cap, accepting one job too
many means missed deadlines — so the platform needs *admission control*.

The exact admissibility test falls out of this repository's substrate: a
task set is schedulable at frequencies ≤ f_max iff the minimal core-time
demands C_i/f_max are realizable on the subinterval flow network (Dinic
max-flow).  On acceptance, the controller quotes the marginal energy of the
updated DER-based plan.

Run:  python examples/admission_control.py
"""

import numpy as np

from repro import PolynomialPower
from repro.analysis import format_table
from repro.core import AdmissionController, Task


def main() -> None:
    power = PolynomialPower(alpha=3.0, static=0.05)
    ctl = AdmissionController(m=2, power=power, f_max=1.0)

    rng = np.random.default_rng(13)
    stream = []
    for i in range(14):
        release = float(rng.uniform(0, 15))  # tight arrival window: contention
        work = float(rng.uniform(2, 8))
        window = work * float(rng.uniform(1.05, 1.8))  # feasible alone at f<=1
        stream.append(Task(release, release + window, work, name=f"job{i + 1}"))

    rows = []
    for task in stream:
        decision = ctl.try_admit(task)
        rows.append(
            [
                task.name,
                f"[{task.release:.1f}, {task.deadline:.1f}]",
                task.work,
                "ACCEPT" if decision.accepted else "reject",
                decision.marginal_energy if decision.accepted else None,
            ]
        )
    print(
        format_table(
            ["job", "window", "work", "decision", "marginal energy"],
            rows,
            precision=3,
            title="Admission stream on 2 cores, f_max = 1.0",
        )
    )

    committed = ctl.committed
    assert committed is not None
    print(f"admitted {len(committed)}/{len(stream)} jobs")
    print(f"total planned energy: {ctl.current_energy:.3f}")
    print(f"exact schedulability of the committed set: {ctl.is_schedulable(committed)}")

    # raising the cap admits more of the same stream
    for f_max in (1.25, 1.5, 2.0):
        ctl2 = AdmissionController(m=2, power=power, f_max=f_max)
        accepted = sum(d.accepted for d in ctl2.admit_all(stream))
        print(f"with f_max = {f_max:g}: {accepted}/{len(stream)} admitted")


if __name__ == "__main__":
    main()
