#!/usr/bin/env python
"""Scenario: real-time tasks on an embedded Intel XScale board (§VI-C).

Practical processors expose a *menu* of operating points, not a continuous
frequency range.  This example shows the paper's two-level approach:

1. fit a continuous model p(f) = γ·f^α + p₀ to the published power table
   (done from scratch in repro.power.fitting — compared here against the
   paper's own fit),
2. plan with the continuous model, then round each frequency up to the next
   operating point for execution,
3. account energy at the *measured* table powers and report deadline misses.

Run:  python examples/embedded_xscale.py
"""

import numpy as np

from repro import SubintervalScheduler, solve_optimal
from repro.analysis import format_table
from repro.experiments import discrete_evaluation
from repro.power import (
    PAPER_FIT,
    fit_power_model_full,
    xscale_frequency_set,
    xscale_table,
)
from repro.workloads import xscale_workload


def main() -> None:
    # --- 1. curve fitting -----------------------------------------------------
    freqs, powers = xscale_table()
    ours = fit_power_model_full(freqs, powers)
    print("Intel XScale power table (Table III):")
    print(format_table(["f (MHz)", "p (mW)"], list(zip(freqs, powers)), precision=0))
    print(
        f"paper's fit: p(f) = 3.855e-6 * f^2.867 + 63.58   "
        f"(SSE = {float(np.sum((np.asarray(PAPER_FIT.power(freqs)) - powers) ** 2)):.1f})"
    )
    print(
        f"our refit:   p(f) = {ours.model.gamma:.4g} * f^{ours.model.alpha:.4g} "
        f"+ {ours.model.static:.4g}   (SSE = {ours.sse:.1f})"
    )

    # --- 2. plan + quantize -----------------------------------------------------
    fset = xscale_frequency_set()
    rng = np.random.default_rng(7)
    tasks = xscale_workload(rng, n_tasks=22)  # work in megacycles, time in s
    m = 4

    planner = SubintervalScheduler(tasks, m, fset.continuous_fit)
    optimal = solve_optimal(tasks, m, fset.continuous_fit)

    rows = []
    for kind, res in planner.run_all().items():
        ev = discrete_evaluation(res.schedule, fset)
        rows.append(
            [
                f"S^{kind}",
                ev.energy / 1000.0,  # mW·s -> W·s
                ev.energy / optimal.energy,
                "yes" if ev.missed else "no",
            ]
        )
    print()
    print(
        format_table(
            ["schedule", "energy (J)", "NEC vs continuous opt", "deadline miss?"],
            rows,
            title=f"{len(tasks)} tasks on a quad-core XScale (quantized to Table III points)",
        )
    )

    # --- 3. what the quantizer did ------------------------------------------------
    f2 = planner.final("der")
    planned = np.asarray(f2.frequencies)
    q = fset.quantize_up(planned)
    print("planned vs executed frequencies (first 8 tasks):")
    for i in range(min(8, len(tasks))):
        exec_f = q.frequencies[i] if q.feasible[i] else float("nan")
        print(
            f"  τ{i + 1}: planned {planned[i]:7.1f} MHz -> executes at "
            f"{exec_f:6.0f} MHz"
        )


if __name__ == "__main__":
    main()
