#!/usr/bin/env python
"""Scenario: energy-aware batch scheduling on a datacenter node.

The paper's motivating setting: independent jobs arrive in bursts (think
nightly analytics batches), each with a deadline and a known work estimate,
on a DVFS-capable multi-core node where static power is substantial.

This example:

* generates a bursty aperiodic workload,
* compares five schedulers — the paper's S^F1/S^F2, the exact optimum, a
  race-to-idle EDF baseline, and a per-task "stretch" governor (which misses
  deadlines under bursts),
* uses §VI-D core-count selection to decide how many cores to keep awake,
* writes an SVG Gantt of the chosen schedule to results/.

Run:  python examples/datacenter_batch.py
"""

from pathlib import Path

import numpy as np

from repro import PolynomialPower, SubintervalScheduler, select_core_count, solve_optimal
from repro.analysis import format_table, gantt_svg
from repro.baselines import max_speed_baseline, stretch_baseline
from repro.workloads import bursty_workload


def main() -> None:
    rng = np.random.default_rng(2026)
    tasks = bursty_workload(
        rng, n_bursts=4, tasks_per_burst=6, horizon=120.0, slack_factor=2.5
    )
    power = PolynomialPower(alpha=3.0, static=0.15)
    m = 4

    scheduler = SubintervalScheduler(tasks, m, power)
    optimal = solve_optimal(tasks, m, power)
    f1 = scheduler.final("even")
    f2 = scheduler.final("der")
    race = max_speed_baseline(tasks, m, power)
    stretch = stretch_baseline(tasks, m, power)

    rows = [
        ["optimal (convex)", optimal.energy, 1.0, 0],
        ["S^F2 (DER-based)", f2.energy, f2.energy / optimal.energy, 0],
        ["S^F1 (even)", f1.energy, f1.energy / optimal.energy, 0],
        ["EDF @ high freq", race.energy, race.energy / optimal.energy, len(race.deadline_misses)],
        ["per-task stretch", stretch.energy, stretch.energy / optimal.energy, len(stretch.deadline_misses)],
    ]
    print(
        format_table(
            ["scheduler", "energy", "NEC", "deadline misses"],
            rows,
            title=f"Bursty batch: {len(tasks)} jobs on {m} cores, p(f)=f^3+0.15",
        )
    )

    # --- how many cores should stay awake? ----------------------------------
    sel = select_core_count(tasks, m_max=8, power=power)
    print("core-count sweep (energy by #cores):")
    for cores, energy in sel.profile():
        marker = "  <-- selected" if cores == sel.best_m else ""
        print(f"  m={cores}: {energy:.3f}{marker}")

    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    svg_path = out / "datacenter_batch_gantt.svg"
    svg_path.write_text(
        gantt_svg(sel.best.schedule, title=f"S^F2 on {sel.best_m} cores")
    )
    print(f"\nGantt chart written to {svg_path}")


if __name__ == "__main__":
    main()
